#ifndef AGSC_CORE_DISPATCH_SERVER_H_
#define AGSC_CORE_DISPATCH_SERVER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/policy_snapshot.h"
#include "env/sc_env.h"
#include "util/snapshot_registry.h"

namespace agsc::core {

/// Tuning knobs of the dispatch service.
struct DispatchConfig {
  /// Concurrent episode sessions: each owns an env::ScEnv replica of the
  /// primary env, seeded on its own Rng::Split stream (the VecSampler
  /// discipline), so sessions evolve independently and deterministically.
  int num_sessions = 8;
  /// Max observation rows folded into one inference batch (one GEMM per
  /// policy head regardless of how many sessions contributed rows).
  int max_batch = 64;
  /// Per-request service deadline. A request still queued when its deadline
  /// passes is failed fast (`expired`) without running inference — stale
  /// actions are worse than no action for a moving UV. 0 disables deadlines.
  long deadline_ms = 50;
  /// Bound on the total admission queue (requests accepted but not yet
  /// drained into a batch). Arrivals beyond the bound are refused with
  /// `rejected` (or displace strictly-lower-priority queued work — see the
  /// brownout discipline below). 0 = unbounded (the pre-overload-control
  /// behavior).
  int max_queue = 1024;
  /// Max requests a single client may have admitted-but-uncompleted
  /// (queued + in service). A flooding client hits its cap and is refused
  /// with `rejected` instead of growing the shared queue. 0 = unlimited.
  int per_client_inflight = 0;
  /// Deadline-aware admission control: refuse a request immediately when
  /// its estimated queue wait (batches ahead of it x an EWMA of batch
  /// service time) already exceeds its deadline — an early explicit
  /// `rejected` beats a late silent `expired`. Only bites when
  /// deadline_ms > 0 and at least one batch has been served.
  bool admission = true;
  /// Base seed for the session env streams.
  uint64_t seed = 1;
};

/// Why a request was refused or shed (DispatchResult::reject_reason).
enum class RejectReason : uint8_t {
  kNone = 0,
  kQueueFull = 1,     ///< Admission queue at max_queue, no lower-priority prey.
  kClientCap = 2,     ///< The client is at per_client_inflight.
  kDeadline = 3,      ///< Estimated queue wait already exceeds the deadline.
  kShed = 4,          ///< Displaced from the queue by a higher-priority arrival.
  kDisconnect = 5,    ///< Client quarantined/cancelled; queued work shed.
};

const char* RejectReasonName(RejectReason reason);

/// Reply to a dispatch request.
struct DispatchResult {
  bool ok = false;        ///< Served within deadline.
  bool expired = false;   ///< Deadline passed while queued; no inference ran.
  bool rejected = false;  ///< Refused at admission or shed; no inference ran.
  bool shutdown = false;  ///< Server stopped before this request was served.
  bool overloaded = false;  ///< Server was in brownout when this completed.
  RejectReason reject_reason = RejectReason::kNone;
  std::array<float, 2> action = {0.0f, 0.0f};  ///< First requested row.
  uint64_t snapshot_version = 0;  ///< Version that computed the action.
  bool episode_done = false;      ///< Session requests: episode just ended.
  double latency_ms = 0.0;        ///< Enqueue -> completion.
};

/// Per-request identity/priority. `client` keys the fairness machinery
/// (per-client queue, in-flight cap, round-robin drain); callers that do
/// not care share client 0. Higher `priority` survives brownout shedding
/// longer; default 0.
struct RequestOptions {
  uint64_t client = 0;
  int priority = 0;
};

/// Counters + latency quantiles, readable at any time (Stats()) and flushed
/// to JSON by agsc_serve on exit.
struct DispatchStats {
  uint64_t requests_ok = 0;
  uint64_t requests_expired = 0;
  uint64_t requests_rejected = 0;   ///< Refused at admission (all reasons).
  uint64_t rejected_queue_full = 0;
  uint64_t rejected_client_cap = 0;
  uint64_t rejected_deadline = 0;   ///< Admission estimator refusals.
  uint64_t requests_shed = 0;       ///< Admitted then shed (brownout/cancel).
  uint64_t requests_shutdown = 0;   ///< Drained unserved at Stop().
  uint64_t requests_no_snapshot = 0;
  uint64_t requests_invalid = 0;    ///< Bad agent id / observation width.
  uint64_t batches = 0;
  uint64_t rows = 0;                ///< Observation rows actually inferred.
  uint64_t publishes = 0;
  uint64_t publish_rejects = 0;     ///< Corrupted promotions kept out.
  uint64_t episodes_completed = 0;
  uint64_t env_steps = 0;           ///< Session timeslots advanced.
  uint64_t overload_entries = 0;    ///< Times brownout engaged.
  uint64_t clients_quarantined = 0; ///< Slow clients disconnected (frontend).
  bool overloaded = false;          ///< Brownout engaged right now (gauge).
  uint64_t queue_depth = 0;         ///< Queued requests right now (gauge).
  double ewma_batch_ms = 0.0;       ///< Admission estimator state (gauge).
  uint64_t latency_samples = 0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
};

/// Point-in-time health probe, cheap enough for load balancers to poll and
/// served by the frontend WITHOUT entering the admission queue (a probe
/// must answer precisely when the queue is the problem).
struct DispatchHealth {
  bool overloaded = false;
  uint64_t queue_depth = 0;
  uint64_t snapshot_version = 0;  ///< 0 before the first publish.
  uint64_t requests_ok = 0;
  uint64_t requests_expired = 0;
  uint64_t requests_rejected = 0;
  uint64_t requests_shed = 0;
  uint64_t clients_quarantined = 0;
  double ewma_batch_ms = 0.0;
};

/// Long-lived low-latency policy dispatch service.
///
/// One batcher thread drains a deadline-aware request queue, pins the
/// current PolicySnapshot once per batch (util::SnapshotRegistry acquire),
/// assembles all pending observation rows — stateless requests and whole
/// sessions alike — into per-head GEMM batches, and completes each request
/// with the deterministic action plus the snapshot version that produced
/// it. Publishers (a checkpoint watcher, a co-located trainer) promote new
/// parameters with PublishSnapshot at any time: the swap is a single
/// release store, request handling never pauses, and in-flight batches
/// finish on the snapshot they pinned. See DESIGN.md "Serving" for the
/// memory-ordering argument.
///
/// Overload control (DESIGN.md "Serving" > "Overload control"): requests
/// are admitted into per-client queues drained round-robin (a flooding
/// client cannot starve the others; its requests also stop at
/// per_client_inflight), the total queue is bounded by max_queue with
/// priority-ordered shedding once full, and the admission estimator
/// (EWMA of batch service time) refuses deadline-infeasible requests
/// up front with an explicit `rejected` instead of a late `expired`.
/// Every refused/shed request completes with a reason — nothing hangs
/// and nothing expires silently. Admitted requests take the identical
/// batched inference path as before, so the bit-exactness contract
/// (served action == Evaluator forward) is untouched by overload.
///
/// Fault hooks: the batch path calls util::FaultInjector::NextStallMs()
/// once per assembled batch (AGSC_FAULT_STALL_TASK/STALL_EVERY/STALL_MS),
/// which the soak test uses to force deadline expiries under load.
class DispatchServer {
 public:
  /// Copies `primary_env` into `config.num_sessions` session replicas, each
  /// reset on its own RNG stream. The server starts with no snapshot:
  /// requests fail (`ok=false`) until the first PublishSnapshot.
  DispatchServer(const env::ScEnv& primary_env, const DispatchConfig& config);
  ~DispatchServer();

  DispatchServer(const DispatchServer&) = delete;
  DispatchServer& operator=(const DispatchServer&) = delete;

  /// Starts the batcher thread. Idempotent.
  void Start();

  /// Stops the batcher and fails any queued requests with `shutdown`.
  /// Idempotent; called by the destructor.
  void Stop();

  /// Stamps `snapshot` with the next version and swaps it live. Thread-safe
  /// against concurrent Acquire (lock-free for readers) and against other
  /// publishers (serialized among themselves). Returns the new version.
  uint64_t PublishSnapshot(std::shared_ptr<PolicySnapshot> snapshot);

  /// Records a rejected promotion attempt (corrupted/truncated checkpoint
  /// that LoadPolicySnapshot refused); the live snapshot is untouched.
  void CountPublishReject();

  /// Records a slow-client quarantine (frontend write budget tripped) so
  /// the serving stats JSON carries it.
  void CountQuarantine();

  /// Currently served snapshot (null before the first publish).
  std::shared_ptr<const PolicySnapshot> CurrentSnapshot() const {
    return registry_.Acquire();
  }

  /// Blocking stateless inference: one observation for `agent` -> its
  /// deterministic action under the snapshot current at service time.
  DispatchResult Act(int agent, const std::vector<float>& obs) {
    return Act(agent, obs, RequestOptions{});
  }
  DispatchResult Act(int agent, const std::vector<float>& obs,
                     const RequestOptions& options);
  /// Non-blocking variant: the future completes when the request is served,
  /// expired, rejected, or shed — always, never hangs. Refusals complete
  /// the future immediately.
  std::future<DispatchResult> ActAsync(int agent, const std::vector<float>& obs,
                                       const RequestOptions& options);

  /// Blocking session step: folds all of session `s`'s per-agent
  /// observations into the next batch, applies the resulting joint action
  /// to the session env, and auto-resets finished episodes. `action` in the
  /// result is agent 0's (the batch's first row).
  DispatchResult StepSession(int session) {
    return StepSession(session, RequestOptions{});
  }
  DispatchResult StepSession(int session, const RequestOptions& options);
  std::future<DispatchResult> StepSessionAsync(int session,
                                               const RequestOptions& options);

  /// Sheds every queued request of `client` (completed as rejected /
  /// kDisconnect, counted in requests_shed) and forgets its fairness
  /// state. In-service requests finish normally — their replies are simply
  /// never written by a disconnected frontend handler. Used by the slow-
  /// client quarantine; safe against a client id that was never seen.
  void CancelClient(uint64_t client);

  int num_sessions() const { return static_cast<int>(sessions_.size()); }

  /// Point-in-time stats (quantiles computed over a sliding window of the
  /// most recent completions).
  DispatchStats Stats() const;

  /// Cheap health probe (atomics + one stats lock; never touches the
  /// admission queue).
  DispatchHealth Health() const;

 private:
  struct Session {
    std::unique_ptr<env::ScEnv> env;
    env::StepResult current;  ///< Live observations (batcher-owned).
    env::StepResult scratch;  ///< Step target, swapped with current.
  };

  enum class RequestKind { kStateless, kSession };

  struct Request {
    RequestKind kind = RequestKind::kStateless;
    int agent = 0;                ///< kStateless: policy head.
    std::vector<float> obs;       ///< kStateless: observation copy.
    int session = 0;              ///< kSession: session index.
    uint64_t client = 0;          ///< Fairness key (frontend connection id).
    int priority = 0;             ///< Brownout shedding order (higher lives).
    std::chrono::steady_clock::time_point enqueue_time;
    std::chrono::steady_clock::time_point deadline;  ///< max() if disabled.
    std::promise<DispatchResult> promise;
  };

  /// Per-client admission state: a FIFO of queued requests plus the
  /// admitted-but-uncompleted count the in-flight cap checks. `weight` is
  /// how many requests the round-robin drain takes per turn.
  struct ClientState {
    std::deque<std::unique_ptr<Request>> queue;
    size_t inflight = 0;
    int weight = 1;
  };

  std::future<DispatchResult> SubmitAsync(std::unique_ptr<Request> request);
  /// Maintain queued_priorities_ alongside every queue insert/remove (all
  /// call sites hold mutex_).
  void NotePriorityQueuedLocked(int priority);
  void NotePriorityDequeuedLocked(int priority);
  /// Completes `request` as rejected with `reason` (stats under the caller's
  /// discretion; this only sets the promise).
  static void RejectRequest(Request& request, RejectReason reason,
                            bool overloaded);
  void CountRejectLocked(RejectReason reason);  ///< stats_mutex_ held.
  /// Recomputes the brownout state after a queue-depth change (mutex_ held).
  void UpdateOverloadLocked();
  void BatcherLoop();
  /// Serves one dequeued batch (inference + session stepping + replies).
  void ServeBatch(std::vector<std::unique_ptr<Request>> batch);
  /// Decrements the in-flight counts of a completed batch (mutex_).
  void FinishClients(const std::vector<uint64_t>& batch_clients);

  DispatchConfig config_;
  util::SnapshotRegistry<PolicySnapshot> registry_;
  std::mutex publish_mutex_;
  std::vector<Session> sessions_;

  // Admission/fairness state. Lock order: mutex_ before stats_mutex_;
  // never the reverse.
  std::mutex mutex_;
  std::condition_variable cv_;
  std::unordered_map<uint64_t, ClientState> clients_;
  std::deque<uint64_t> rr_order_;  ///< Clients with queued work, drain order.
  size_t queue_depth_ = 0;         ///< Total queued requests (all clients).
  /// Queued-request count per priority level. The brownout shed path reads
  /// begin() for the minimum priority present, so an equal-priority overload
  /// rejects in O(log levels) instead of scanning every queued request —
  /// the scan only runs when a strictly-lower-priority victim is known to
  /// exist.
  std::map<int, size_t> queued_priorities_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::thread batcher_;

  // Gauges readable without mutex_ (Health() must not contend with the
  // admission path).
  std::atomic<uint64_t> queue_depth_gauge_{0};
  std::atomic<bool> overloaded_{false};
  std::atomic<uint64_t> overload_entries_{0};
  std::atomic<double> ewma_batch_ms_{0.0};

  mutable std::mutex stats_mutex_;
  DispatchStats stats_;
  std::vector<double> latency_window_;  ///< Ring of recent latencies (ms).
  size_t latency_next_ = 0;
};

}  // namespace agsc::core

#endif  // AGSC_CORE_DISPATCH_SERVER_H_
