#ifndef AGSC_CORE_DISPATCH_SERVER_H_
#define AGSC_CORE_DISPATCH_SERVER_H_

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/policy_snapshot.h"
#include "env/sc_env.h"
#include "util/snapshot_registry.h"

namespace agsc::core {

/// Tuning knobs of the dispatch service.
struct DispatchConfig {
  /// Concurrent episode sessions: each owns an env::ScEnv replica of the
  /// primary env, seeded on its own Rng::Split stream (the VecSampler
  /// discipline), so sessions evolve independently and deterministically.
  int num_sessions = 8;
  /// Max observation rows folded into one inference batch (one GEMM per
  /// policy head regardless of how many sessions contributed rows).
  int max_batch = 64;
  /// Per-request service deadline. A request still queued when its deadline
  /// passes is failed fast (`expired`) without running inference — stale
  /// actions are worse than no action for a moving UV. 0 disables deadlines.
  long deadline_ms = 50;
  /// Base seed for the session env streams.
  uint64_t seed = 1;
};

/// Reply to a dispatch request.
struct DispatchResult {
  bool ok = false;        ///< Served within deadline.
  bool expired = false;   ///< Deadline passed while queued; no inference ran.
  bool shutdown = false;  ///< Server stopped before this request was served.
  std::array<float, 2> action = {0.0f, 0.0f};  ///< First requested row.
  uint64_t snapshot_version = 0;  ///< Version that computed the action.
  bool episode_done = false;      ///< Session requests: episode just ended.
  double latency_ms = 0.0;        ///< Enqueue -> completion.
};

/// Counters + latency quantiles, readable at any time (Stats()) and flushed
/// to JSON by agsc_serve on exit.
struct DispatchStats {
  uint64_t requests_ok = 0;
  uint64_t requests_expired = 0;
  uint64_t requests_shutdown = 0;   ///< Drained unserved at Stop().
  uint64_t requests_no_snapshot = 0;
  uint64_t requests_invalid = 0;    ///< Bad agent id / observation width.
  uint64_t batches = 0;
  uint64_t rows = 0;                ///< Observation rows actually inferred.
  uint64_t publishes = 0;
  uint64_t publish_rejects = 0;     ///< Corrupted promotions kept out.
  uint64_t episodes_completed = 0;
  uint64_t env_steps = 0;           ///< Session timeslots advanced.
  uint64_t latency_samples = 0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_max_ms = 0.0;
};

/// Long-lived low-latency policy dispatch service.
///
/// One batcher thread drains a deadline-aware request queue, pins the
/// current PolicySnapshot once per batch (util::SnapshotRegistry acquire),
/// assembles all pending observation rows — stateless requests and whole
/// sessions alike — into per-head GEMM batches, and completes each request
/// with the deterministic action plus the snapshot version that produced
/// it. Publishers (a checkpoint watcher, a co-located trainer) promote new
/// parameters with PublishSnapshot at any time: the swap is a single
/// release store, request handling never pauses, and in-flight batches
/// finish on the snapshot they pinned. See DESIGN.md "Serving" for the
/// memory-ordering argument.
///
/// Fault hooks: the batch path calls util::FaultInjector::NextStallMs()
/// once per assembled batch (AGSC_FAULT_STALL_TASK/STALL_MS), which the
/// soak test uses to force deadline expiries under load.
class DispatchServer {
 public:
  /// Copies `primary_env` into `config.num_sessions` session replicas, each
  /// reset on its own RNG stream. The server starts with no snapshot:
  /// requests fail (`ok=false`) until the first PublishSnapshot.
  DispatchServer(const env::ScEnv& primary_env, const DispatchConfig& config);
  ~DispatchServer();

  DispatchServer(const DispatchServer&) = delete;
  DispatchServer& operator=(const DispatchServer&) = delete;

  /// Starts the batcher thread. Idempotent.
  void Start();

  /// Stops the batcher and fails any queued requests with `shutdown`.
  /// Idempotent; called by the destructor.
  void Stop();

  /// Stamps `snapshot` with the next version and swaps it live. Thread-safe
  /// against concurrent Acquire (lock-free for readers) and against other
  /// publishers (serialized among themselves). Returns the new version.
  uint64_t PublishSnapshot(std::shared_ptr<PolicySnapshot> snapshot);

  /// Records a rejected promotion attempt (corrupted/truncated checkpoint
  /// that LoadPolicySnapshot refused); the live snapshot is untouched.
  void CountPublishReject();

  /// Currently served snapshot (null before the first publish).
  std::shared_ptr<const PolicySnapshot> CurrentSnapshot() const {
    return registry_.Acquire();
  }

  /// Blocking stateless inference: one observation for `agent` -> its
  /// deterministic action under the snapshot current at service time.
  DispatchResult Act(int agent, const std::vector<float>& obs);

  /// Blocking session step: folds all of session `s`'s per-agent
  /// observations into the next batch, applies the resulting joint action
  /// to the session env, and auto-resets finished episodes. `action` in the
  /// result is agent 0's (the batch's first row).
  DispatchResult StepSession(int session);

  int num_sessions() const { return static_cast<int>(sessions_.size()); }

  /// Point-in-time stats (quantiles computed over a sliding window of the
  /// most recent completions).
  DispatchStats Stats() const;

 private:
  struct Session {
    std::unique_ptr<env::ScEnv> env;
    env::StepResult current;  ///< Live observations (batcher-owned).
    env::StepResult scratch;  ///< Step target, swapped with current.
  };

  enum class RequestKind { kStateless, kSession };

  struct Request {
    RequestKind kind = RequestKind::kStateless;
    int agent = 0;                ///< kStateless: policy head.
    std::vector<float> obs;       ///< kStateless: observation copy.
    int session = 0;              ///< kSession: session index.
    std::chrono::steady_clock::time_point enqueue_time;
    std::chrono::steady_clock::time_point deadline;  ///< max() if disabled.
    std::promise<DispatchResult> promise;
  };

  DispatchResult Submit(std::unique_ptr<Request> request);
  void BatcherLoop();
  /// Serves one dequeued batch (inference + session stepping + replies).
  void ServeBatch(std::vector<std::unique_ptr<Request>> batch);

  DispatchConfig config_;
  util::SnapshotRegistry<PolicySnapshot> registry_;
  std::mutex publish_mutex_;
  std::vector<Session> sessions_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Request>> queue_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::thread batcher_;

  mutable std::mutex stats_mutex_;
  DispatchStats stats_;
  std::vector<double> latency_window_;  ///< Ring of recent latencies (ms).
  size_t latency_next_ = 0;
};

}  // namespace agsc::core

#endif  // AGSC_CORE_DISPATCH_SERVER_H_
