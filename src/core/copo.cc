#include "core/copo.h"

#include <algorithm>
#include <cmath>

namespace agsc::core {

namespace {
constexpr double kDegToRad = M_PI / 180.0;
}  // namespace

double Lcf::phi_rad() const { return phi_deg * kDegToRad; }
double Lcf::chi_rad() const { return chi_deg * kDegToRad; }

void Lcf::ClampToRange() {
  phi_deg = std::clamp(phi_deg, 0.0, 90.0);
  chi_deg = std::clamp(chi_deg, 0.0, 90.0);
}

double CoopAdvantage(double a, double a_he, double a_ho, const Lcf& lcf) {
  return a * std::cos(lcf.phi_rad()) +
         (a_he * std::cos(lcf.chi_rad()) + a_ho * std::sin(lcf.chi_rad())) *
             std::sin(lcf.phi_rad());
}

double CoopAdvantageDPhi(double a, double a_he, double a_ho, const Lcf& lcf) {
  return -a * std::sin(lcf.phi_rad()) +
         (a_he * std::cos(lcf.chi_rad()) + a_ho * std::sin(lcf.chi_rad())) *
             std::cos(lcf.phi_rad());
}

double CoopAdvantageDChi(double /*a*/, double a_he, double a_ho,
                         const Lcf& lcf) {
  return (-a_he * std::sin(lcf.chi_rad()) + a_ho * std::cos(lcf.chi_rad())) *
         std::sin(lcf.phi_rad());
}

double CoopAdvantagePlain(double a, double a_neighbor, const Lcf& lcf) {
  return a * std::cos(lcf.phi_rad()) + a_neighbor * std::sin(lcf.phi_rad());
}

double CoopAdvantagePlainDPhi(double a, double a_neighbor, const Lcf& lcf) {
  return -a * std::sin(lcf.phi_rad()) + a_neighbor * std::cos(lcf.phi_rad());
}

double NeighborMeanReward(const std::vector<int>& neighbors,
                          const std::vector<double>& rewards) {
  if (neighbors.empty()) return 0.0;
  double sum = 0.0;
  for (int n : neighbors) sum += rewards[n];
  return sum / static_cast<double>(neighbors.size());
}

}  // namespace agsc::core
