#ifndef AGSC_CORE_EOI_H_
#define AGSC_CORE_EOI_H_

#include <memory>
#include <vector>

#include "core/policy.h"
#include "nn/optimizer.h"

namespace agsc::core {

/// Hyperparameters of the i-EOI plug-in (Section V-A).
struct EoiConfig {
  std::vector<int> hidden = {128, 64};
  float lr = 1e-3f;
  float epsilon = 0.1f;  ///< Weight of the MI regularizer in Eqn. (21).
  int epochs = 2;
  int minibatch = 256;
};

/// The i-EOI identity classifier p_mu(k | o^k) (Section V-A).
///
/// A global probabilistic classifier maps a local observation to a
/// distribution over agent identities. Its confidence on the true identity
/// is the intrinsic reward (Eqn. 19): observations only the owner would see
/// (far-away, distinct areas) earn high intrinsic reward, driving a spatial
/// division of work. Training minimizes Eqn. (21): cross-entropy against the
/// true identity plus epsilon * CE(p, p) (the conditional-entropy
/// regularizer derived from the mutual-information bound, Eqn. 20).
class EoiClassifier {
 public:
  EoiClassifier(int obs_dim, int num_agents, const EoiConfig& config,
                util::Rng& rng);

  /// p_mu(.|obs) for one observation (length num_agents, sums to 1).
  std::vector<float> Probabilities(const std::vector<float>& obs) const;

  /// Intrinsic reward p_mu(k|obs) for agent `k`.
  float IntrinsicReward(int k, const std::vector<float>& obs) const;

  /// Intrinsic rewards for a batch of (obs) rows of agent `k`.
  std::vector<float> IntrinsicRewards(
      int k, const std::vector<std::vector<float>>& obs_rows) const;

  /// One training pass over <o^k, k> samples drawn equally from each agent
  /// (Algorithm 1, Line 12). `per_agent_obs[k]` holds agent k's
  /// observations. Returns the mean loss of the last epoch.
  float Update(const std::vector<const std::vector<std::vector<float>>*>&
                   per_agent_obs,
               util::Rng& rng);

  int num_agents() const { return num_agents_; }
  const nn::Mlp& net() const { return net_; }

  /// The classifier's Adam optimizer (checkpointing captures its moments).
  nn::Adam& optimizer() { return *optimizer_; }

 private:
  int num_agents_;
  EoiConfig config_;
  nn::Mlp net_;
  std::unique_ptr<nn::Adam> optimizer_;
};

}  // namespace agsc::core

#endif  // AGSC_CORE_EOI_H_
