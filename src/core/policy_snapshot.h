#ifndef AGSC_CORE_POLICY_SNAPSHOT_H_
#define AGSC_CORE_POLICY_SNAPSHOT_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/hi_madrl.h"
#include "core/policy.h"

namespace agsc::core {

/// Immutable, refcounted copy of a trained policy's actor parameters, built
/// for concurrent serving. A snapshot owns its own parameter storage (deep
/// copies, never aliasing the trainer's live networks), so once constructed
/// it is never written again and any number of dispatch threads may run
/// inference through it without synchronization. Publication happens through
/// util::SnapshotRegistry<PolicySnapshot>: a trainer promotes a new
/// checkpoint by building a fresh snapshot off to the side and swapping the
/// registry pointer — in-flight batches keep the old snapshot alive through
/// their shared_ptr until they finish.
///
/// Correctness contract (asserted by dispatch_server_test): for every agent
/// k and observation, Act/ActBatch return exactly the bytes of the
/// Evaluator's deterministic path on the same checkpoint —
/// HiMadrlTrainer::Act(..., deterministic=true), which is the Gaussian mode
/// = the tanh-bounded mean MLP output. Both paths run the identical fused
/// LinearActivateValue kernel, and GEMM accumulation order per output
/// element is independent of the batch row count, so batching N sessions
/// into one forward changes nothing.
class PolicySnapshot {
 public:
  /// One observation row awaiting an action: `agent` selects the policy head
  /// (the shared head under share_params, with the one-hot id appended by
  /// the snapshot — callers pass the raw env observation either way).
  struct Row {
    int agent = 0;
    const std::vector<float>* obs = nullptr;
  };

  /// Deep-copies the actor parameters out of `trainer`. The returned
  /// snapshot is independent of the trainer's subsequent updates.
  /// `source_path` is recorded for logs/stats (the checkpoint file the
  /// trainer just loaded, or "<live>" when snapshotting mid-training).
  static std::shared_ptr<PolicySnapshot> FromTrainer(
      const HiMadrlTrainer& trainer, std::string source_path);

  /// Deterministic (mode) action for one observation. Reference path used
  /// by tests; the server always goes through ActBatch.
  std::array<float, 2> Act(int agent, const std::vector<float>& obs) const;

  /// Batched deterministic inference: rows are grouped per policy head and
  /// each group runs as a single GEMM through nn::Mlp::Infer. Output order
  /// matches input order. Rows for the same head may belong to different
  /// sessions/agents — grouping is purely by network identity.
  void ActBatch(const std::vector<Row>& rows,
                std::vector<std::array<float, 2>>& actions_out) const;

  int num_agents() const { return num_agents_; }
  int obs_dim() const { return obs_dim_; }
  bool share_params() const { return share_params_; }
  uint64_t fingerprint() const { return fingerprint_; }
  const std::string& source_path() const { return source_path_; }

  /// Monotonic publish version, stamped by the publisher *before* the
  /// registry swap (a snapshot is immutable once visible to readers).
  uint64_t version() const { return version_; }
  void set_version(uint64_t v) { version_ = v; }

 private:
  PolicySnapshot() = default;

  /// Writes row `r` of `batch`: raw obs, plus the one-hot agent id under SP
  /// — byte-for-byte HiMadrlTrainer::ActorInput.
  void FillRow(int agent, const std::vector<float>& obs, nn::Tensor& batch,
               int r) const;

  int num_agents_ = 0;
  int obs_dim_ = 0;        ///< Raw env observation width.
  int input_dim_ = 0;      ///< Actor input width (obs [+ one-hot id]).
  bool share_params_ = false;
  uint64_t fingerprint_ = 0;
  uint64_t version_ = 0;
  std::string source_path_;
  /// One mean MLP per policy head (1 under SP, else per agent), each with
  /// freshly allocated parameters restored from the trainer.
  std::vector<std::unique_ptr<GaussianActor>> heads_;
};

/// Loads `path` into the long-lived `staging` trainer (params + LCFs only,
/// via LoadCheckpointForInference — accepts checkpoints from any worker
/// count) and deep-copies the result into a fresh snapshot. Returns nullptr
/// with `*error` set when the file is missing, corrupted, truncated, or
/// fingerprint-mismatched; the staging trainer is left unchanged in that
/// case, so the previously published snapshot stays valid.
std::shared_ptr<PolicySnapshot> LoadPolicySnapshot(HiMadrlTrainer& staging,
                                                   const std::string& path,
                                                   std::string* error);

}  // namespace agsc::core

#endif  // AGSC_CORE_POLICY_SNAPSHOT_H_
