#include "core/ppo.h"

#include <cmath>
#include <stdexcept>

namespace agsc::core {

AdvantageResult OneStepAdvantages(const std::vector<float>& rewards,
                                  const std::vector<float>& values,
                                  const std::vector<float>& next_values,
                                  const std::vector<uint8_t>& dones,
                                  float gamma) {
  const size_t n = rewards.size();
  if (values.size() != n || next_values.size() != n || dones.size() != n) {
    throw std::invalid_argument("OneStepAdvantages: length mismatch");
  }
  AdvantageResult out;
  out.advantages.resize(n);
  out.returns.resize(n);
  for (size_t t = 0; t < n; ++t) {
    const float bootstrap = dones[t] ? 0.0f : gamma * next_values[t];
    out.returns[t] = rewards[t] + bootstrap;
    out.advantages[t] = out.returns[t] - values[t];
  }
  return out;
}

AdvantageResult GaeAdvantages(const std::vector<float>& rewards,
                              const std::vector<float>& values,
                              const std::vector<float>& next_values,
                              const std::vector<uint8_t>& dones, float gamma,
                              float lambda) {
  const size_t n = rewards.size();
  if (values.size() != n || next_values.size() != n || dones.size() != n) {
    throw std::invalid_argument("GaeAdvantages: length mismatch");
  }
  AdvantageResult out;
  out.advantages.resize(n);
  out.returns.resize(n);
  float gae = 0.0f;
  for (size_t i = n; i-- > 0;) {
    const float bootstrap = dones[i] ? 0.0f : gamma * next_values[i];
    const float delta = rewards[i] + bootstrap - values[i];
    gae = delta + (dones[i] ? 0.0f : gamma * lambda * gae);
    out.advantages[i] = gae;
    out.returns[i] = gae + values[i];
  }
  return out;
}

void NormalizeInPlace(std::vector<float>& xs) {
  if (xs.size() < 2) return;
  double mean = 0.0;
  for (float x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (float x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size());
  const double std = std::sqrt(var);
  if (std < 1e-8) return;
  for (float& x : xs) {
    x = static_cast<float>((x - mean) / std);
  }
}

nn::Variable PpoSurrogate(const nn::Variable& logp_new,
                          const std::vector<float>& logp_old,
                          const std::vector<float>& advantages,
                          float clip_eps) {
  const int n = logp_new.rows();
  if (logp_new.cols() != 1 || static_cast<int>(logp_old.size()) != n ||
      static_cast<int>(advantages.size()) != n) {
    throw std::invalid_argument("PpoSurrogate: shape mismatch");
  }
  nn::Tensor old_t(n, 1), adv_t(n, 1);
  for (int i = 0; i < n; ++i) {
    old_t(i, 0) = logp_old[i];
    adv_t(i, 0) = advantages[i];
  }
  nn::Variable ratio =
      nn::Exp(nn::Sub(logp_new, nn::Variable::Constant(old_t)));
  nn::Variable adv = nn::Variable::Constant(adv_t);
  nn::Variable unclipped = nn::Mul(ratio, adv);
  nn::Variable clipped =
      nn::Mul(nn::Clamp(ratio, 1.0f - clip_eps, 1.0f + clip_eps), adv);
  return nn::Mean(nn::Minimum(unclipped, clipped));
}

}  // namespace agsc::core
