#ifndef AGSC_CORE_COPO_H_
#define AGSC_CORE_COPO_H_

#include <vector>

namespace agsc::core {

/// Local coordination factors of one UV (Section V-B). Both angles are in
/// degrees and constrained to [0, 90]:
///  * phi: 0 = fully self-interested, 90 = fully neighbor-oriented;
///  * chi: attention split between heterogeneous (cos chi) and homogeneous
///    (sin chi) neighbors.
/// Algorithm 1 initializes phi = 0, chi = 45.
struct Lcf {
  double phi_deg = 0.0;
  double chi_deg = 45.0;

  double phi_rad() const;
  double chi_rad() const;

  /// Clamps both angles into [0, 90] degrees.
  void ClampToRange();
};

/// Cooperation-aware advantage (Eqn. 27):
///   A_CO = A cos(phi) + (A_HE cos(chi) + A_HO sin(chi)) sin(phi).
double CoopAdvantage(double a, double a_he, double a_ho, const Lcf& lcf);

/// dA_CO/dphi (radians).
double CoopAdvantageDPhi(double a, double a_he, double a_ho, const Lcf& lcf);

/// dA_CO/dchi (radians).
double CoopAdvantageDChi(double a, double a_he, double a_ho, const Lcf& lcf);

/// The plain-CoPO variant used by the h/i-MADRL(CoPO) baseline: both
/// neighbor kinds merged into one set, a single neighbor advantage and no
/// chi split: A_CO = A cos(phi) + A_N sin(phi).
double CoopAdvantagePlain(double a, double a_neighbor, const Lcf& lcf);

/// dA_CO/dphi for the plain variant.
double CoopAdvantagePlainDPhi(double a, double a_neighbor, const Lcf& lcf);

/// Mean of `rewards` over `neighbors` indices (Eqn. 23); 0 when empty.
double NeighborMeanReward(const std::vector<int>& neighbors,
                          const std::vector<double>& rewards);

}  // namespace agsc::core

#endif  // AGSC_CORE_COPO_H_
