#include "core/serve_protocol.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <utility>

#include "util/fault_inject.h"
#include "util/logging.h"

namespace agsc::core {

namespace {

using util::WireReader;
using util::WireWriter;

// DispatchResult outcome flags on the wire.
constexpr uint32_t kFlagOk = 1u << 0;
constexpr uint32_t kFlagExpired = 1u << 1;
constexpr uint32_t kFlagShutdown = 1u << 2;
constexpr uint32_t kFlagEpisodeDone = 1u << 3;
constexpr uint32_t kFlagRejected = 1u << 4;
constexpr uint32_t kFlagOverloaded = 1u << 5;

// DispatchHealth flags.
constexpr uint32_t kHealthFlagOverloaded = 1u << 0;

}  // namespace

std::string EncodeServeActRequest(const ServeActRequest& req) {
  WireWriter w;
  w.U32(kServeProtocolVersion);
  w.I32(req.agent);
  w.F32Vec(req.obs);
  w.I32(req.priority);
  return w.Take();
}

bool DecodeServeActRequest(const std::string& payload, ServeActRequest& out) {
  WireReader r(payload);
  if (r.U32() != kServeProtocolVersion) return false;
  out.agent = r.I32();
  if (!r.F32Vec(out.obs)) return false;
  out.priority = r.I32();
  return r.Done();
}

std::string EncodeServeStepRequest(const ServeStepRequest& req) {
  WireWriter w;
  w.U32(kServeProtocolVersion);
  w.I32(req.session);
  w.I32(req.priority);
  return w.Take();
}

bool DecodeServeStepRequest(const std::string& payload,
                            ServeStepRequest& out) {
  WireReader r(payload);
  if (r.U32() != kServeProtocolVersion) return false;
  out.session = r.I32();
  out.priority = r.I32();
  return r.Done();
}

std::string EncodeServeResponse(const DispatchResult& result) {
  WireWriter w;
  w.U32(kServeProtocolVersion);
  uint32_t flags = 0;
  if (result.ok) flags |= kFlagOk;
  if (result.expired) flags |= kFlagExpired;
  if (result.shutdown) flags |= kFlagShutdown;
  if (result.episode_done) flags |= kFlagEpisodeDone;
  if (result.rejected) flags |= kFlagRejected;
  if (result.overloaded) flags |= kFlagOverloaded;
  w.U32(flags);
  w.U32(static_cast<uint32_t>(result.reject_reason));
  w.F32(result.action[0]);
  w.F32(result.action[1]);
  w.U64(result.snapshot_version);
  w.F64(result.latency_ms);
  return w.Take();
}

bool DecodeServeResponse(const std::string& payload, DispatchResult& out) {
  WireReader r(payload);
  if (r.U32() != kServeProtocolVersion) return false;
  const uint32_t flags = r.U32();
  const uint32_t reason = r.U32();
  out.action[0] = r.F32();
  out.action[1] = r.F32();
  out.snapshot_version = r.U64();
  out.latency_ms = r.F64();
  if (!r.Done()) return false;
  if (reason > static_cast<uint32_t>(RejectReason::kDisconnect)) return false;
  out.ok = (flags & kFlagOk) != 0;
  out.expired = (flags & kFlagExpired) != 0;
  out.shutdown = (flags & kFlagShutdown) != 0;
  out.episode_done = (flags & kFlagEpisodeDone) != 0;
  out.rejected = (flags & kFlagRejected) != 0;
  out.overloaded = (flags & kFlagOverloaded) != 0;
  out.reject_reason = static_cast<RejectReason>(reason);
  return true;
}

std::string EncodeServeHealthRequest() {
  WireWriter w;
  w.U32(kServeProtocolVersion);
  return w.Take();
}

bool DecodeServeHealthRequest(const std::string& payload) {
  WireReader r(payload);
  if (r.U32() != kServeProtocolVersion) return false;
  return r.Done();
}

std::string EncodeServeHealthResponse(const DispatchHealth& health) {
  WireWriter w;
  w.U32(kServeProtocolVersion);
  uint32_t flags = 0;
  if (health.overloaded) flags |= kHealthFlagOverloaded;
  w.U32(flags);
  w.U64(health.queue_depth);
  w.U64(health.snapshot_version);
  w.U64(health.requests_ok);
  w.U64(health.requests_expired);
  w.U64(health.requests_rejected);
  w.U64(health.requests_shed);
  w.U64(health.clients_quarantined);
  w.F64(health.ewma_batch_ms);
  return w.Take();
}

bool DecodeServeHealthResponse(const std::string& payload,
                               DispatchHealth& out) {
  WireReader r(payload);
  if (r.U32() != kServeProtocolVersion) return false;
  const uint32_t flags = r.U32();
  out.queue_depth = r.U64();
  out.snapshot_version = r.U64();
  out.requests_ok = r.U64();
  out.requests_expired = r.U64();
  out.requests_rejected = r.U64();
  out.requests_shed = r.U64();
  out.clients_quarantined = r.U64();
  out.ewma_batch_ms = r.F64();
  if (!r.Done()) return false;
  out.overloaded = (flags & kHealthFlagOverloaded) != 0;
  return true;
}

// --- ServeFrontend ---------------------------------------------------------

ServeFrontend::ServeFrontend(DispatchServer& server, const Options& options)
    : server_(server), options_(options) {
  util::IgnoreSigpipe();
  if (options_.max_pipeline < 1) options_.max_pipeline = 1;
  std::string host;
  int port = 0;
  std::string parse_error;
  if (!util::ParseHostPort(options_.listen_address, &host, &port,
                           &parse_error)) {
    throw util::NetError("bad listen address: " + parse_error);
  }
  std::string error;
  if (!listener_.Listen(host, port, &error)) {
    throw util::NetError("cannot listen on " + options_.listen_address +
                         ": " + error);
  }
  if (::pipe(wake_pipe_) != 0) {
    listener_.Close();
    throw util::NetError("cannot create frontend wake pipe");
  }
  for (int end : {0, 1}) {
    util::SetNonBlocking(wake_pipe_[end], true);
    ::fcntl(wake_pipe_[end], F_SETFD, FD_CLOEXEC);
  }
}

ServeFrontend::~ServeFrontend() {
  Stop();
  for (int end : {0, 1}) {
    if (wake_pipe_[end] >= 0) ::close(wake_pipe_[end]);
    wake_pipe_[end] = -1;
  }
}

void ServeFrontend::Start() {
  if (running_.exchange(true)) return;
  stop_requested_.store(false);
  acceptor_ = std::thread([this] { AcceptLoop(); });
}

void ServeFrontend::Stop() {
  if (!running_.load()) return;
  stop_requested_.store(true);
  // The wake byte stays queued in the pipe until the acceptor drains it
  // *after* poll returns, so the wakeup cannot be lost; the listener is
  // closed only after the join — the acceptor reads listener_.fd() each
  // iteration, and closing it concurrently would race that read.
  WakeAcceptor();
  if (acceptor_.joinable()) acceptor_.join();
  listener_.Close();
  // Unblock every handler read with EOF, then join.
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const std::unique_ptr<Conn>& conn : conns_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (const std::unique_ptr<Conn>& conn : conns_) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
    if (conn->fd >= 0) ::close(conn->fd);
    conn->fd = -1;
  }
  conns_.clear();
  running_.store(false);
}

void ServeFrontend::WakeAcceptor() {
  if (wake_pipe_[1] < 0) return;
  const char byte = 1;
  // Nonblocking: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void ServeFrontend::ReapFinished() {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  for (size_t i = 0; i < conns_.size();) {
    if (conns_[i]->done.load(std::memory_order_acquire)) {
      Conn& conn = *conns_[i];
      if (conn.reader.joinable()) conn.reader.join();
      if (conn.writer.joinable()) conn.writer.join();
      if (conn.fd >= 0) ::close(conn.fd);
      conn.fd = -1;
      conns_.erase(conns_.begin() + static_cast<long>(i));
    } else {
      ++i;
    }
  }
}

void ServeFrontend::AcceptLoop() {
  while (!stop_requested_.load()) {
    // poll(2) over the listener and the wake pipe: a pending connection or
    // a wake byte (Stop, a finished handler) is noticed immediately — the
    // old 250 ms accept tick cost every idle connect up to a tick of
    // latency and every Stop up to a tick of shutdown lag.
    struct pollfd fds[2];
    fds[0].fd = listener_.fd();
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = wake_pipe_[0];
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    const int rc = ::poll(fds, 2, /*timeout=*/-1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) {
      char drain[64];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
    ReapFinished();
    if (stop_requested_.load()) break;
    if ((fds[0].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;
    const int fd = listener_.Accept(/*timeout_ms=*/0);  // Probe: no wait.
    if (fd == -1) continue;  // Raced away / spurious wakeup.
    if (fd < 0) break;       // Listener closed (Stop) or failed.
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      if (static_cast<int>(conns_.size()) >= options_.max_connections) {
        AGSC_LOG(kWarning) << "serve frontend: connection limit ("
                           << options_.max_connections << ") reached";
        ::close(fd);
        continue;
      }
    }
    if (options_.send_buffer_bytes > 0) {
      int bytes = options_.send_buffer_bytes;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Conn>();
    Conn* raw = conn.get();
    raw->fd = fd;
    // Dispatch fairness key: a high-bit namespace keeps frontend
    // connections disjoint from in-process client ids (agsc_serve's local
    // fleet uses small integers).
    raw->client = (uint64_t{1} << 32) + next_client_ordinal_++;
    raw->reader = std::thread([this, raw] { ReaderLoop(raw); });
    raw->writer = std::thread([this, raw] { WriterLoop(raw); });
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.push_back(std::move(conn));
  }
}

void ServeFrontend::ReaderLoop(Conn* conn) {
  util::FrameReader reader(conn->fd);
  util::Frame frame;
  for (;;) {
    const util::IpcStatus status = reader.Read(frame, /*timeout_ms=*/-1);
    if (status != util::IpcStatus::kOk) {
      // EOF is the normal goodbye; anything else (corruption, a torn
      // frame from a dying peer) just ends this conversation — the
      // dispatch server and the other connections are untouched.
      if (status != util::IpcStatus::kEof) {
        AGSC_LOG(kWarning) << "serve frontend: dropping connection ("
                           << util::IpcStatusName(status) << ")";
      }
      break;
    }
    PendingReply reply;
    bool valid = false;
    if (frame.type == kSrvMsgActRequest) {
      ServeActRequest req;
      if ((valid = DecodeServeActRequest(frame.payload, req))) {
        RequestOptions opts;
        opts.client = conn->client;
        opts.priority = req.priority;
        reply.future = server_.ActAsync(req.agent, req.obs, opts);
      }
    } else if (frame.type == kSrvMsgStepRequest) {
      ServeStepRequest req;
      if ((valid = DecodeServeStepRequest(frame.payload, req))) {
        RequestOptions opts;
        opts.client = conn->client;
        opts.priority = req.priority;
        reply.future = server_.StepSessionAsync(req.session, opts);
      }
    } else if (frame.type == kSrvMsgHealthRequest) {
      // Health never enters the admission queue — it must answer
      // precisely when the queue is the problem. It still takes its FIFO
      // slot in this connection's response order.
      if ((valid = DecodeServeHealthRequest(frame.payload))) {
        reply.is_health = true;
        reply.health_payload = EncodeServeHealthResponse(server_.Health());
      }
    }
    if (!valid) {
      AGSC_LOG(kWarning) << "serve frontend: rejecting malformed request "
                         << "(type " << frame.type << ")";
      break;
    }
    bool quarantined = false;
    {
      // Pipeline bound: a peer with max_pipeline responses outstanding is
      // backpressured here (we stop reading; TCP flow control propagates).
      std::unique_lock<std::mutex> lock(conn->mutex);
      conn->cv.wait(lock, [this, conn] {
        return conn->quarantined ||
               conn->pending.size() <
                   static_cast<size_t>(options_.max_pipeline);
      });
      quarantined = conn->quarantined;
      if (!quarantined) conn->pending.push_back(std::move(reply));
    }
    if (quarantined) break;  // Connection is being torn down; stop reading.
    conn->cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->reader_done = true;
  }
  conn->cv.notify_all();
}

void ServeFrontend::WriterLoop(Conn* conn) {
  util::FrameWriter writer(conn->fd);
  uint64_t out_seq = 0;
  bool broken = false;
  for (;;) {
    PendingReply reply;
    {
      std::unique_lock<std::mutex> lock(conn->mutex);
      conn->cv.wait(lock, [conn] {
        return !conn->pending.empty() || conn->reader_done;
      });
      if (conn->pending.empty()) break;  // Reader gone and fully drained.
      reply = std::move(conn->pending.front());
      conn->pending.pop_front();
    }
    conn->cv.notify_all();  // Free a pipeline slot for the reader.
    uint32_t type = kSrvMsgResponse;
    std::string payload;
    if (reply.is_health) {
      type = kSrvMsgHealthResponse;
      payload = std::move(reply.health_payload);
    } else {
      // Always completes: served, expired, rejected, shed, or shutdown —
      // the dispatch server never leaves a promise dangling.
      payload = EncodeServeResponse(reply.future.get());
    }
    if (broken) continue;  // Draining slots only; the socket is dead.
    const util::IpcStatus status =
        writer.Write(type, out_seq++, payload, options_.write_timeout_ms);
    if (status == util::IpcStatus::kOk) continue;
    broken = true;
    // kTimeout = the peer stopped draining its socket inside the write
    // budget: quarantine. Anything else is an ordinary disconnect; either
    // way its queued dispatch work is shed so live clients get the slots.
    AbandonConn(conn, /*count_quarantine=*/status == util::IpcStatus::kTimeout);
  }
  ::shutdown(conn->fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
  WakeAcceptor();  // Let the acceptor reap this slot promptly.
}

void ServeFrontend::AbandonConn(Conn* conn, bool count_quarantine) {
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->quarantined = true;
  }
  conn->cv.notify_all();
  // Shed the client's queued dispatch work (completed as rejected /
  // disconnect) so a dead connection stops consuming batch slots.
  server_.CancelClient(conn->client);
  if (count_quarantine) {
    clients_quarantined_.fetch_add(1, std::memory_order_relaxed);
    server_.CountQuarantine();
    AGSC_LOG(kWarning) << "serve frontend: quarantining slow client (write "
                       << "budget " << options_.write_timeout_ms
                       << " ms exceeded); shedding its queued requests";
  }
  ::shutdown(conn->fd, SHUT_RDWR);
}

// --- ServeClient ------------------------------------------------------------

bool ServeClient::Connect(const std::string& host, int port, long timeout_ms,
                          std::string* error) {
  Close();
  util::IgnoreSigpipe();
  fd_ = util::TcpConnect(host, port, timeout_ms, error);
  if (fd_ < 0) return false;
  writer_ = std::make_unique<util::FrameWriter>(fd_);
  reader_ = std::make_unique<util::FrameReader>(fd_);
  out_seq_ = 0;
  return true;
}

void ServeClient::Close() {
  writer_.reset();
  reader_.reset();
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool ServeClient::SendFrame(uint32_t type, const std::string& payload,
                            long timeout_ms) {
  if (fd_ < 0) return false;
  return writer_->Write(type, out_seq_++, payload, timeout_ms) ==
         util::IpcStatus::kOk;
}

bool ServeClient::ReadResponse(long timeout_ms, DispatchResult& out) {
  if (fd_ < 0) return false;
  // Fault hook: a client that stops draining its socket (STALL_DRAIN_MS).
  // With a pipelined send loop this backs responses up into the server's
  // send buffer until the frontend's write budget trips.
  const long drain_stall = util::FaultInjector::Instance().StallDrainMs();
  if (drain_stall > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(drain_stall));
  }
  util::Frame frame;
  if (reader_->Read(frame, timeout_ms) != util::IpcStatus::kOk) return false;
  if (frame.type != kSrvMsgResponse) return false;
  return DecodeServeResponse(frame.payload, out);
}

bool ServeClient::RoundTrip(uint32_t type, const std::string& payload,
                            long timeout_ms, DispatchResult& out) {
  if (!SendFrame(type, payload, timeout_ms)) return false;
  return ReadResponse(timeout_ms, out);
}

bool ServeClient::Act(int agent, const std::vector<float>& obs,
                      long timeout_ms, DispatchResult& out, int priority) {
  ServeActRequest req;
  req.agent = agent;
  req.obs = obs;
  req.priority = priority;
  return RoundTrip(kSrvMsgActRequest, EncodeServeActRequest(req), timeout_ms,
                   out);
}

bool ServeClient::StepSession(int session, long timeout_ms,
                              DispatchResult& out, int priority) {
  ServeStepRequest req;
  req.session = session;
  req.priority = priority;
  return RoundTrip(kSrvMsgStepRequest, EncodeServeStepRequest(req),
                   timeout_ms, out);
}

bool ServeClient::SendAct(int agent, const std::vector<float>& obs,
                          long timeout_ms, int priority) {
  ServeActRequest req;
  req.agent = agent;
  req.obs = obs;
  req.priority = priority;
  return SendFrame(kSrvMsgActRequest, EncodeServeActRequest(req), timeout_ms);
}

bool ServeClient::SendStep(int session, long timeout_ms, int priority) {
  ServeStepRequest req;
  req.session = session;
  req.priority = priority;
  return SendFrame(kSrvMsgStepRequest, EncodeServeStepRequest(req),
                   timeout_ms);
}

bool ServeClient::Health(long timeout_ms, DispatchHealth& out) {
  if (!SendFrame(kSrvMsgHealthRequest, EncodeServeHealthRequest(),
                 timeout_ms)) {
    return false;
  }
  util::Frame frame;
  if (reader_->Read(frame, timeout_ms) != util::IpcStatus::kOk) return false;
  if (frame.type != kSrvMsgHealthResponse) return false;
  return DecodeServeHealthResponse(frame.payload, out);
}

}  // namespace agsc::core
