#include "core/serve_protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "util/logging.h"

namespace agsc::core {

namespace {

using util::WireReader;
using util::WireWriter;

// DispatchResult outcome flags on the wire.
constexpr uint32_t kFlagOk = 1u << 0;
constexpr uint32_t kFlagExpired = 1u << 1;
constexpr uint32_t kFlagShutdown = 1u << 2;
constexpr uint32_t kFlagEpisodeDone = 1u << 3;

}  // namespace

std::string EncodeServeActRequest(const ServeActRequest& req) {
  WireWriter w;
  w.U32(kServeProtocolVersion);
  w.I32(req.agent);
  w.F32Vec(req.obs);
  return w.Take();
}

bool DecodeServeActRequest(const std::string& payload, ServeActRequest& out) {
  WireReader r(payload);
  if (r.U32() != kServeProtocolVersion) return false;
  out.agent = r.I32();
  if (!r.F32Vec(out.obs)) return false;
  return r.Done();
}

std::string EncodeServeStepRequest(const ServeStepRequest& req) {
  WireWriter w;
  w.U32(kServeProtocolVersion);
  w.I32(req.session);
  return w.Take();
}

bool DecodeServeStepRequest(const std::string& payload,
                            ServeStepRequest& out) {
  WireReader r(payload);
  if (r.U32() != kServeProtocolVersion) return false;
  out.session = r.I32();
  return r.Done();
}

std::string EncodeServeResponse(const DispatchResult& result) {
  WireWriter w;
  w.U32(kServeProtocolVersion);
  uint32_t flags = 0;
  if (result.ok) flags |= kFlagOk;
  if (result.expired) flags |= kFlagExpired;
  if (result.shutdown) flags |= kFlagShutdown;
  if (result.episode_done) flags |= kFlagEpisodeDone;
  w.U32(flags);
  w.F32(result.action[0]);
  w.F32(result.action[1]);
  w.U64(result.snapshot_version);
  w.F64(result.latency_ms);
  return w.Take();
}

bool DecodeServeResponse(const std::string& payload, DispatchResult& out) {
  WireReader r(payload);
  if (r.U32() != kServeProtocolVersion) return false;
  const uint32_t flags = r.U32();
  out.action[0] = r.F32();
  out.action[1] = r.F32();
  out.snapshot_version = r.U64();
  out.latency_ms = r.F64();
  if (!r.Done()) return false;
  out.ok = (flags & kFlagOk) != 0;
  out.expired = (flags & kFlagExpired) != 0;
  out.shutdown = (flags & kFlagShutdown) != 0;
  out.episode_done = (flags & kFlagEpisodeDone) != 0;
  return true;
}

// --- ServeFrontend ---------------------------------------------------------

ServeFrontend::ServeFrontend(DispatchServer& server, const Options& options)
    : server_(server), options_(options) {
  util::IgnoreSigpipe();
  std::string host;
  int port = 0;
  if (!util::ParseHostPort(options_.listen_address, &host, &port)) {
    throw util::NetError("unparseable listen address '" +
                         options_.listen_address + "'");
  }
  std::string error;
  if (!listener_.Listen(host, port, &error)) {
    throw util::NetError("cannot listen on " + options_.listen_address +
                         ": " + error);
  }
}

ServeFrontend::~ServeFrontend() { Stop(); }

void ServeFrontend::Start() {
  if (running_.exchange(true)) return;
  stop_requested_.store(false);
  acceptor_ = std::thread([this] { AcceptLoop(); });
}

void ServeFrontend::Stop() {
  if (!running_.load()) return;
  stop_requested_.store(true);
  // Unblock the acceptor: closing the listening socket fails its poll.
  listener_.Close();
  if (acceptor_.joinable()) acceptor_.join();
  // Unblock every handler read with EOF, then join.
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const std::unique_ptr<Conn>& conn : conns_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (const std::unique_ptr<Conn>& conn : conns_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  conns_.clear();
  running_.store(false);
}

void ServeFrontend::ReapFinished() {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  for (size_t i = 0; i < conns_.size();) {
    if (conns_[i]->done) {
      if (conns_[i]->thread.joinable()) conns_[i]->thread.join();
      conns_.erase(conns_.begin() + static_cast<long>(i));
    } else {
      ++i;
    }
  }
}

void ServeFrontend::AcceptLoop() {
  while (!stop_requested_.load()) {
    const int fd = listener_.Accept(/*timeout_ms=*/250);
    if (fd == -1) {  // Timeout: reap and keep accepting.
      ReapFinished();
      continue;
    }
    if (fd < 0) break;  // Listener closed (Stop) or failed.
    ReapFinished();
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      if (static_cast<int>(conns_.size()) >= options_.max_connections) {
        AGSC_LOG(kWarning) << "serve frontend: connection limit ("
                           << options_.max_connections << ") reached";
        ::close(fd);
        continue;
      }
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Conn>();
    Conn* raw = conn.get();
    raw->fd = fd;
    raw->thread = std::thread([this, fd, raw] { HandleConnection(fd, raw); });
    std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.push_back(std::move(conn));
  }
}

void ServeFrontend::HandleConnection(int fd, Conn* conn) {
  util::FrameReader reader(fd);
  util::FrameWriter writer(fd);
  uint64_t out_seq = 0;
  util::Frame frame;
  for (;;) {
    const util::IpcStatus status = reader.Read(frame, /*timeout_ms=*/-1);
    if (status != util::IpcStatus::kOk) {
      // EOF is the normal goodbye; anything else (corruption, a torn
      // frame from a dying peer) just ends this conversation — the
      // dispatch server and the other connections are untouched.
      if (status != util::IpcStatus::kEof) {
        AGSC_LOG(kWarning) << "serve frontend: dropping connection ("
                           << util::IpcStatusName(status) << ")";
      }
      break;
    }
    DispatchResult result;
    bool valid = false;
    if (frame.type == kSrvMsgActRequest) {
      ServeActRequest req;
      if ((valid = DecodeServeActRequest(frame.payload, req))) {
        result = server_.Act(req.agent, req.obs);
      }
    } else if (frame.type == kSrvMsgStepRequest) {
      ServeStepRequest req;
      if ((valid = DecodeServeStepRequest(frame.payload, req))) {
        result = server_.StepSession(req.session);
      }
    }
    if (!valid) {
      AGSC_LOG(kWarning) << "serve frontend: rejecting malformed request "
                         << "(type " << frame.type << ")";
      break;
    }
    if (writer.Write(kSrvMsgResponse, out_seq++, EncodeServeResponse(result),
                     options_.write_timeout_ms) != util::IpcStatus::kOk) {
      AGSC_LOG(kWarning)
          << "serve frontend: dropping connection (response write stalled)";
      break;
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  conn->fd = -1;
  conn->done = true;
}

// --- ServeClient ------------------------------------------------------------

bool ServeClient::Connect(const std::string& host, int port, long timeout_ms,
                          std::string* error) {
  Close();
  util::IgnoreSigpipe();
  fd_ = util::TcpConnect(host, port, timeout_ms, error);
  if (fd_ < 0) return false;
  writer_ = std::make_unique<util::FrameWriter>(fd_);
  reader_ = std::make_unique<util::FrameReader>(fd_);
  out_seq_ = 0;
  return true;
}

void ServeClient::Close() {
  writer_.reset();
  reader_.reset();
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool ServeClient::RoundTrip(uint32_t type, const std::string& payload,
                            long timeout_ms, DispatchResult& out) {
  if (fd_ < 0) return false;
  if (writer_->Write(type, out_seq_++, payload, timeout_ms) !=
      util::IpcStatus::kOk) {
    return false;
  }
  util::Frame frame;
  if (reader_->Read(frame, timeout_ms) != util::IpcStatus::kOk) return false;
  if (frame.type != kSrvMsgResponse) return false;
  return DecodeServeResponse(frame.payload, out);
}

bool ServeClient::Act(int agent, const std::vector<float>& obs,
                      long timeout_ms, DispatchResult& out) {
  ServeActRequest req;
  req.agent = agent;
  req.obs = obs;
  return RoundTrip(kSrvMsgActRequest, EncodeServeActRequest(req), timeout_ms,
                   out);
}

bool ServeClient::StepSession(int session, long timeout_ms,
                              DispatchResult& out) {
  ServeStepRequest req;
  req.session = session;
  return RoundTrip(kSrvMsgStepRequest, EncodeServeStepRequest(req),
                   timeout_ms, out);
}

}  // namespace agsc::core
