#ifndef AGSC_CORE_POLICY_H_
#define AGSC_CORE_POLICY_H_

#include <vector>

#include "nn/distributions.h"
#include "nn/layers.h"

namespace agsc::core {

/// Network sizes shared by all actors/critics (paper: fully-connected
/// layers only, Section VI-F).
struct NetConfig {
  std::vector<int> hidden = {128, 64};
  float log_std_init = -0.5f;
};

/// Gaussian policy head over the 2-D continuous UV action (direction,
/// speed): an MLP with tanh-bounded mean plus a state-independent
/// learnable log-std vector.
class GaussianActor : public nn::Module {
 public:
  GaussianActor(int obs_dim, int action_dim, const NetConfig& config,
                util::Rng& rng);

  /// Builds the policy distribution for a batch of observations
  /// (differentiable through mean and log_std).
  nn::DiagGaussian Dist(const nn::Tensor& obs_batch) const;

  /// Samples one action for a single observation; outputs the log-prob of
  /// the sample. `deterministic` returns the mode.
  std::vector<float> Act(const std::vector<float>& obs, util::Rng& rng,
                         bool deterministic, float* logp) const;

  std::vector<nn::Variable> Parameters() const override;

  int obs_dim() const { return mean_net_.in_features(); }
  int action_dim() const { return mean_net_.out_features(); }
  const nn::Variable& log_std() const { return log_std_; }
  /// The mean MLP, exposed for values-only batched inference (serving):
  /// mean_net().Infer(batch) is bit-identical to the per-row deterministic
  /// Act path, which returns the distribution mode = the tanh-bounded mean.
  const nn::Mlp& mean_net() const { return mean_net_; }

 private:
  nn::Mlp mean_net_;
  nn::Variable log_std_;
};

/// Scalar value network V(input) -> 1 (used for V^k, V_HE, V_HO, V_all).
class ValueNet : public nn::Module {
 public:
  ValueNet(int input_dim, const NetConfig& config, util::Rng& rng);

  /// Differentiable forward pass -> Nx1.
  nn::Variable Forward(const nn::Tensor& batch) const;

  /// Values only (no graph) for a list of feature rows.
  std::vector<float> Values(const std::vector<std::vector<float>>& rows) const;

  std::vector<nn::Variable> Parameters() const override;

  int input_dim() const { return net_.in_features(); }

 private:
  nn::Mlp net_;
};

}  // namespace agsc::core

#endif  // AGSC_CORE_POLICY_H_
