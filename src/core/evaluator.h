#ifndef AGSC_CORE_EVALUATOR_H_
#define AGSC_CORE_EVALUATOR_H_

#include <functional>
#include <vector>

#include "env/sc_env.h"
#include "util/rng.h"

namespace agsc::core {

/// A decision-maker for all UVs: learned policies ignore `env` and act from
/// the observation; planner baselines (Shortest-Path, Greedy) may inspect
/// the environment directly.
class Policy {
 public:
  virtual ~Policy() = default;

  /// Called once right after env.Reset() for each evaluation episode.
  virtual void BeginEpisode(const env::ScEnv& env) { (void)env; }

  /// Returns agent `k`'s raw action for this timeslot.
  virtual env::UvAction Act(const env::ScEnv& env, int k,
                            const std::vector<float>& obs, util::Rng& rng,
                            bool deterministic) = 0;
};

/// Result of an evaluation run.
struct EvalResult {
  env::Metrics mean;                    ///< Component-wise episode average.
  std::vector<env::Metrics> episodes;   ///< Per-episode metrics.
};

/// Runs `episodes` full episodes of `policy` in `env` (the paper tests each
/// model 50 times and averages, Section VI). `deterministic` selects the
/// policy mode instead of sampling.
///
/// Polls `stop_check` (default: util::ShutdownRequested) once per timeslot
/// and throws util::InterruptedError when it fires, so a SIGINT during a
/// long evaluation tail stops the process promptly instead of after all
/// remaining episodes.
EvalResult Evaluate(env::ScEnv& env, Policy& policy, int episodes,
                    uint64_t seed, bool deterministic = true,
                    const std::function<bool()>& stop_check = nullptr);

}  // namespace agsc::core

#endif  // AGSC_CORE_EVALUATOR_H_
