#ifndef AGSC_CORE_SERVE_PROTOCOL_H_
#define AGSC_CORE_SERVE_PROTOCOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/dispatch_server.h"
#include "util/ipc.h"
#include "util/net.h"

namespace agsc::core {

/// Wire protocol of the networked serving frontend: the DispatchServer's
/// entry points (Act, StepSession, Health) exposed as framed
/// request/response pairs over TCP (util/net sockets carrying util/ipc
/// length-prefixed CRC frames — the exact transport the rollout workers
/// speak, reused rather than reinvented).
///
/// Each connection is an independent conversation: frame `seq` starts at 0
/// per direction and increments per frame, so a dropped or reordered frame
/// is caught by the reader's gap check. Requests PIPELINE: a client may
/// send many requests before reading responses, and the frontend answers
/// strictly in request order per connection (one response frame per
/// request frame, kSrvMsgHealthResponse for health and kSrvMsgResponse for
/// everything else). ServeClient offers both the lock-step round-trip and
/// the split Send*/ReadResponse halves for pipelined use.
///
/// v2 (this version) adds overload semantics: requests carry a `priority`
/// (higher survives brownout shedding longer), responses carry
/// `rejected`/`overloaded` flags plus a RejectReason, and a Health
/// request/response pair exposes queue depth, shed counts, and snapshot
/// version for load-balancer probes. Health is answered by the frontend
/// from DispatchServer::Health() WITHOUT entering the admission queue —
/// but it still takes its FIFO slot in this connection's response order,
/// so probes that must not wait behind pipelined inference should use a
/// dedicated connection. v1 peers are refused (version checks fail and
/// the connection drops); both ends of this repo speak v2.
///
/// The inference path adds NO semantics of its own: every admitted request
/// is handed to the in-process DispatchServer, so a framed Act over
/// loopback returns an action bit-identical to a direct
/// DispatchServer::Act call against the same snapshot — serving_soak_test
/// pins exactly that. Deadlines, batching, admission, fairness, snapshot
/// pinning, and fail-fast expiry all happen in the DispatchServer; the
/// frontend only moves bytes (and quarantines peers that stop moving
/// theirs — see ServeFrontend).
inline constexpr uint32_t kServeProtocolVersion = 2;

enum ServeMsgType : uint32_t {
  /// Client -> frontend: stateless inference.
  /// {agent i32, obs F32Vec, priority i32}.
  kSrvMsgActRequest = 1,
  /// Client -> frontend: step a server-side session.
  /// {session i32, priority i32}.
  kSrvMsgStepRequest = 2,
  /// Frontend -> client: one DispatchResult. Answers Act/Step requests.
  kSrvMsgResponse = 3,
  /// Client -> frontend: health probe (empty body besides the version).
  kSrvMsgHealthRequest = 4,
  /// Frontend -> client: one DispatchHealth. Answers a health request.
  kSrvMsgHealthResponse = 5,
};

struct ServeActRequest {
  int32_t agent = 0;
  std::vector<float> obs;
  int32_t priority = 0;
};

struct ServeStepRequest {
  int32_t session = 0;
  int32_t priority = 0;
};

std::string EncodeServeActRequest(const ServeActRequest& req);
bool DecodeServeActRequest(const std::string& payload, ServeActRequest& out);
std::string EncodeServeStepRequest(const ServeStepRequest& req);
bool DecodeServeStepRequest(const std::string& payload, ServeStepRequest& out);

/// DispatchResult crosses the wire losslessly: floats/doubles as raw bit
/// patterns, the outcome flags packed into a bitmask plus a reason word.
std::string EncodeServeResponse(const DispatchResult& result);
bool DecodeServeResponse(const std::string& payload, DispatchResult& out);

std::string EncodeServeHealthRequest();
bool DecodeServeHealthRequest(const std::string& payload);
std::string EncodeServeHealthResponse(const DispatchHealth& health);
bool DecodeServeHealthResponse(const std::string& payload,
                               DispatchHealth& out);

/// TCP frontend for a DispatchServer: accepts connections on a listening
/// socket and serves framed Act/StepSession/Health requests against the
/// wrapped (caller-owned, already Start()ed) server.
///
/// Threading: one acceptor thread (poll(2) over the listener plus an
/// internal wake pipe, so an idle frontend accepts with ~0 latency and
/// Stop() reacts on the next poll wakeup — no fixed tick), plus one
/// reader and one writer thread per live connection. The reader decodes
/// frames and submits them ASYNCHRONOUSLY (DispatchServer::ActAsync /
/// StepSessionAsync) under this connection's client id, queueing the
/// result futures on an ordered pending-reply deque the writer drains —
/// that is what lets one connection keep many requests in flight and what
/// makes per-client fairness observable end to end. `max_pipeline` bounds
/// the deque; a peer that overruns it is simply backpressured (its reader
/// stops reading, TCP flow control does the rest).
///
/// Slow-client quarantine: every response write is bounded by
/// `write_timeout_ms` (the connection's write budget). A peer that stops
/// draining its socket trips the budget; the frontend then cancels the
/// client's queued dispatch work (DispatchServer::CancelClient — shed as
/// `rejected`/disconnect, so batch slots go back to live clients), counts
/// the quarantine, and tears the connection down. `send_buffer_bytes`
/// optionally shrinks SO_SNDBUF on accepted sockets so tests can trip the
/// budget without writing megabytes.
///
/// Stop() discipline: handler reads are unbounded (a quiet client costs
/// nothing), so shutdown works by shutdown(2)-ing every live connection —
/// the blocked reads see EOF and the handlers unwind; no timeout-tearing
/// mid-frame. Pending replies drain before a writer exits: every accepted
/// frame is answered or its connection is dead, never silently dropped.
class ServeFrontend {
 public:
  struct Options {
    std::string listen_address;     ///< "HOST:PORT"; port 0 = kernel pick.
    long write_timeout_ms = 5000;   ///< Per-connection write budget.
    int max_connections = 64;       ///< Accepts beyond this are closed.
    int max_pipeline = 256;         ///< In-flight requests per connection.
    int send_buffer_bytes = 0;      ///< SO_SNDBUF on accepted fds; 0 = OS.
  };

  /// Binds and listens immediately; throws util::NetError when the address
  /// is unusable (agsc_serve maps it to util::kExitNetError).
  ServeFrontend(DispatchServer& server, const Options& options);
  ~ServeFrontend();

  ServeFrontend(const ServeFrontend&) = delete;
  ServeFrontend& operator=(const ServeFrontend&) = delete;

  /// Starts the acceptor thread. Idempotent.
  void Start();
  /// Stops accepting, unblocks and joins every handler. Idempotent.
  void Stop();

  int bound_port() const { return listener_.bound_port(); }

  /// Connections accepted over this frontend's lifetime (tests/stats).
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  /// Connections torn down for tripping their write budget.
  uint64_t clients_quarantined() const {
    return clients_quarantined_.load(std::memory_order_relaxed);
  }

 private:
  /// One response slot, FIFO per connection. Health probes are answered
  /// from a pre-encoded payload; everything else waits on its dispatch
  /// future (which ALWAYS completes — served, expired, rejected, shed, or
  /// shutdown — so the writer never wedges on a slot).
  struct PendingReply {
    bool is_health = false;
    std::string health_payload;
    std::future<DispatchResult> future;
  };

  struct Conn {
    int fd = -1;
    uint64_t client = 0;  ///< Dispatch fairness key for this connection.
    std::thread reader;
    std::thread writer;
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<PendingReply> pending;
    bool reader_done = false;   ///< No more requests will be queued.
    bool quarantined = false;   ///< Write budget tripped; shedding.
    std::atomic<bool> done{false};  ///< Both threads exiting; reapable.
  };

  void AcceptLoop();
  void ReaderLoop(Conn* conn);
  void WriterLoop(Conn* conn);
  /// Cancels the connection's dispatch work and tears the socket down
  /// (quarantine or write failure; `count` = report as quarantine).
  void AbandonConn(Conn* conn, bool count_quarantine);
  /// Joins finished handlers and drops their slots (acceptor thread only).
  void ReapFinished();
  /// Pokes the acceptor's poll (connection finished, Stop requested).
  void WakeAcceptor();

  DispatchServer& server_;
  Options options_;
  util::TcpListener listener_;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> clients_quarantined_{0};
  uint64_t next_client_ordinal_ = 0;  ///< Acceptor thread only.
  int wake_pipe_[2] = {-1, -1};       ///< poll(2) wakeup channel.

  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Conn>> conns_;
};

/// Minimal blocking client for the frontend: one connection. The Act /
/// StepSession / Health calls are lock-step round-trips (send one frame,
/// read one response); the SendAct/SendStep + ReadResponse halves let a
/// caller pipeline many requests per connection — used by agsc_serve's
/// flood fleet and the overload soak scenarios. Real deployments can speak
/// the protocol from anything that can frame bytes.
class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient() { Close(); }

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connects with `timeout_ms` per the util/ipc sentinel convention
  /// (negative = unbounded). False on failure (`error` filled if given).
  bool Connect(const std::string& host, int port, long timeout_ms,
               std::string* error = nullptr);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One framed Act round-trip; `timeout_ms` bounds the response read.
  /// False on transport failure (the connection is then unusable).
  bool Act(int agent, const std::vector<float>& obs, long timeout_ms,
           DispatchResult& out, int priority = 0);
  /// One framed StepSession round-trip.
  bool StepSession(int session, long timeout_ms, DispatchResult& out,
                   int priority = 0);
  /// One framed health-probe round-trip.
  bool Health(long timeout_ms, DispatchHealth& out);

  /// Pipelined halves: queue a request frame without waiting for its
  /// response (`timeout_ms` bounds only the write)...
  bool SendAct(int agent, const std::vector<float>& obs, long timeout_ms,
               int priority = 0);
  bool SendStep(int session, long timeout_ms, int priority = 0);
  /// ...and collect the next in-order response. One ReadResponse per
  /// successful Send*.
  bool ReadResponse(long timeout_ms, DispatchResult& out);

 private:
  bool SendFrame(uint32_t type, const std::string& payload, long timeout_ms);
  bool RoundTrip(uint32_t type, const std::string& payload, long timeout_ms,
                 DispatchResult& out);

  int fd_ = -1;
  std::unique_ptr<util::FrameWriter> writer_;
  std::unique_ptr<util::FrameReader> reader_;
  uint64_t out_seq_ = 0;
};

}  // namespace agsc::core

#endif  // AGSC_CORE_SERVE_PROTOCOL_H_
