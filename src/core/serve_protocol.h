#ifndef AGSC_CORE_SERVE_PROTOCOL_H_
#define AGSC_CORE_SERVE_PROTOCOL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/dispatch_server.h"
#include "util/ipc.h"
#include "util/net.h"

namespace agsc::core {

/// Wire protocol of the networked serving frontend: the DispatchServer's
/// two blocking entry points (Act, StepSession) exposed as framed
/// request/response pairs over TCP (util/net sockets carrying util/ipc
/// length-prefixed CRC frames — the exact transport the rollout workers
/// speak, reused rather than reinvented).
///
/// Each connection is an independent conversation: the client sends one
/// request frame and reads exactly one kSrvMsgResponse back; frame `seq`
/// starts at 0 per direction and increments per frame, so a dropped or
/// reordered frame is caught by the reader's gap check. Requests pipeline
/// naturally (the frontend answers in request order per connection), but
/// the provided ServeClient keeps the simple lock-step discipline.
///
/// The frontend adds NO semantics of its own: every request is handed to
/// the in-process DispatchServer, so a framed Act over loopback returns an
/// action bit-identical to a direct DispatchServer::Act call against the
/// same snapshot — serving_soak_test pins exactly that. Deadlines,
/// batching, snapshot pinning, and fail-fast expiry all happen in the
/// DispatchServer; the frontend only moves bytes.
inline constexpr uint32_t kServeProtocolVersion = 1;

enum ServeMsgType : uint32_t {
  /// Client -> frontend: stateless inference. {agent i32, obs F32Vec}.
  kSrvMsgActRequest = 1,
  /// Client -> frontend: step a server-side session. {session i32}.
  kSrvMsgStepRequest = 2,
  /// Frontend -> client: one DispatchResult. Answers either request.
  kSrvMsgResponse = 3,
};

struct ServeActRequest {
  int32_t agent = 0;
  std::vector<float> obs;
};

struct ServeStepRequest {
  int32_t session = 0;
};

std::string EncodeServeActRequest(const ServeActRequest& req);
bool DecodeServeActRequest(const std::string& payload, ServeActRequest& out);
std::string EncodeServeStepRequest(const ServeStepRequest& req);
bool DecodeServeStepRequest(const std::string& payload, ServeStepRequest& out);

/// DispatchResult crosses the wire losslessly: floats/doubles as raw bit
/// patterns, the three outcome flags packed into a bitmask.
std::string EncodeServeResponse(const DispatchResult& result);
bool DecodeServeResponse(const std::string& payload, DispatchResult& out);

/// TCP frontend for a DispatchServer: accepts connections on a listening
/// socket and serves framed Act/StepSession requests against the wrapped
/// (caller-owned, already Start()ed) server.
///
/// Threading: one acceptor thread plus one handler thread per live
/// connection. The handler blocks in DispatchServer's synchronous calls —
/// the deadline discipline lives there, so a slow request fails fast with
/// `expired` rather than stalling the connection indefinitely. Response
/// writes are bounded by `write_timeout_ms`; a peer that stops draining
/// its socket gets its connection dropped, never a wedged handler.
///
/// Stop() discipline: handler reads are unbounded (a quiet client costs
/// nothing), so shutdown works by shutdown(2)-ing every live connection —
/// the blocked reads see EOF and the handlers unwind; no timeout-tearing
/// mid-frame.
class ServeFrontend {
 public:
  struct Options {
    std::string listen_address;     ///< "HOST:PORT"; port 0 = kernel pick.
    long write_timeout_ms = 5000;   ///< Response-write bound per frame.
    int max_connections = 64;       ///< Accepts beyond this are closed.
  };

  /// Binds and listens immediately; throws util::NetError when the address
  /// is unusable (agsc_serve maps it to util::kExitNetError).
  ServeFrontend(DispatchServer& server, const Options& options);
  ~ServeFrontend();

  ServeFrontend(const ServeFrontend&) = delete;
  ServeFrontend& operator=(const ServeFrontend&) = delete;

  /// Starts the acceptor thread. Idempotent.
  void Start();
  /// Stops accepting, unblocks and joins every handler. Idempotent.
  void Stop();

  int bound_port() const { return listener_.bound_port(); }

  /// Connections accepted over this frontend's lifetime (tests/stats).
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int fd = -1;
    std::thread thread;
    bool done = false;  ///< Handler exited; joinable, fd closed.
  };

  void AcceptLoop();
  void HandleConnection(int fd, Conn* conn);
  /// Joins finished handlers and drops their slots (acceptor thread only).
  void ReapFinished();

  DispatchServer& server_;
  Options options_;
  util::TcpListener listener_;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<uint64_t> connections_accepted_{0};

  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Conn>> conns_;
};

/// Minimal blocking client for the frontend: one connection, lock-step
/// request/response. Used by bench_serving's TCP mode and the serving soak
/// test; real deployments can speak the protocol from anything that can
/// frame bytes.
class ServeClient {
 public:
  ServeClient() = default;
  ~ServeClient() { Close(); }

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connects with `timeout_ms` per the util/ipc sentinel convention
  /// (negative = unbounded). False on failure (`error` filled if given).
  bool Connect(const std::string& host, int port, long timeout_ms,
               std::string* error = nullptr);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// One framed Act round-trip; `timeout_ms` bounds the response read.
  /// False on transport failure (the connection is then unusable).
  bool Act(int agent, const std::vector<float>& obs, long timeout_ms,
           DispatchResult& out);
  /// One framed StepSession round-trip.
  bool StepSession(int session, long timeout_ms, DispatchResult& out);

 private:
  bool RoundTrip(uint32_t type, const std::string& payload, long timeout_ms,
                 DispatchResult& out);

  int fd_ = -1;
  std::unique_ptr<util::FrameWriter> writer_;
  std::unique_ptr<util::FrameReader> reader_;
  uint64_t out_seq_ = 0;
};

}  // namespace agsc::core

#endif  // AGSC_CORE_SERVE_PROTOCOL_H_
