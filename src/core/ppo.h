#ifndef AGSC_CORE_PPO_H_
#define AGSC_CORE_PPO_H_

#include <vector>

#include "nn/ops.h"

namespace agsc::core {

/// Advantage / return estimates for one agent's rollout.
struct AdvantageResult {
  std::vector<float> advantages;  ///< A_t.
  std::vector<float> returns;     ///< Value-regression targets.
};

/// One-step TD advantages per the paper's Eqn. (24):
///   A_t = r_t + gamma * V(o_{t+1}) - V(o_t),
/// with V(o_{t+1}) treated as 0 at episode boundaries (`dones[t]`).
/// Returns targets are r_t + gamma * V(o_{t+1}).
AdvantageResult OneStepAdvantages(const std::vector<float>& rewards,
                                  const std::vector<float>& values,
                                  const std::vector<float>& next_values,
                                  const std::vector<uint8_t>& dones,
                                  float gamma);

/// Generalized advantage estimation (Schulman et al. 2016), an optional
/// lower-variance alternative (lambda = 0 reduces to OneStepAdvantages).
AdvantageResult GaeAdvantages(const std::vector<float>& rewards,
                              const std::vector<float>& values,
                              const std::vector<float>& next_values,
                              const std::vector<uint8_t>& dones, float gamma,
                              float lambda);

/// In-place standardization to zero mean / unit std (no-op when the std is
/// ~0 or the vector has fewer than 2 entries).
void NormalizeInPlace(std::vector<float>& xs);

/// Builds the clipped PPO surrogate (to be MAXIMIZED; Eqn. 25 / 28):
///   E[min(rho * A, clip(rho, 1-eps, 1+eps) * A)],
/// where rho = exp(logp_new - logp_old). `logp_new` is an Nx1 graph
/// variable; `logp_old` and `advantages` are constants (N entries).
nn::Variable PpoSurrogate(const nn::Variable& logp_new,
                          const std::vector<float>& logp_old,
                          const std::vector<float>& advantages,
                          float clip_eps);

}  // namespace agsc::core

#endif  // AGSC_CORE_PPO_H_
