#include "core/proc_sampler.h"

#include <signal.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/logging.h"
#include "util/shutdown.h"

namespace agsc::core {

namespace {

// Same stream-id layout as VecSampler: worker w > 0 samples from id 2w and
// steps its environment from id 2w+1; worker 0 owns no split ids.
uint64_t SampleStreamId(int w) { return 2 * static_cast<uint64_t>(w); }
uint64_t EnvStreamId(int w) { return 2 * static_cast<uint64_t>(w) + 1; }

// Extra read budget for an episode-prefix reply from a fresh incarnation:
// the worker first rebuilds its dataset/env, which the per-step deadline
// was never meant to cover.
constexpr long kSpawnGraceMs = 15000;

}  // namespace

ProcSampler::ProcSampler(env::ScEnv& primary_env, util::Rng& primary_rng,
                         int num_workers, uint64_t seed, Options options)
    : primary_env_(primary_env),
      primary_rng_(primary_rng),
      num_workers_(num_workers),
      options_(std::move(options)) {
  if (num_workers < 1) {
    throw std::invalid_argument("ProcSampler: num_workers must be >= 1");
  }
  if (options_.worker_binary.empty()) {
    throw std::invalid_argument("ProcSampler: worker_binary is required");
  }
  map::CampusId campus;
  if (!CampusIdFromName(primary_env_.dataset().campus.name, campus)) {
    throw std::invalid_argument(
        "ProcSampler: environment dataset is not a named campus; worker "
        "subprocesses cannot rebuild it");
  }
  // A worker dying between our poll and our write must surface as EPIPE on
  // that worker's pipe, not kill the whole trainer.
  ::signal(SIGPIPE, SIG_IGN);

  const util::Rng base(seed);
  sample_rngs_.reserve(static_cast<size_t>(num_workers - 1));
  env_mirrors_.reserve(static_cast<size_t>(num_workers - 1));
  for (int w = 1; w < num_workers; ++w) {
    sample_rngs_.push_back(base.Split(SampleStreamId(w)));
    env_mirrors_.push_back(base.Split(EnvStreamId(w)));
  }
  workers_.resize(static_cast<size_t>(num_workers));
  episode_rng_.resize(static_cast<size_t>(num_workers));
  replay_log_.resize(static_cast<size_t>(num_workers));
  consecutive_failures_.assign(static_cast<size_t>(num_workers), 0);
  pending_prefix_.assign(static_cast<size_t>(num_workers), 0);
}

ProcSampler::~ProcSampler() {
  for (size_t w = 0; w < workers_.size(); ++w) {
    Worker& wk = workers_[w];
    if (wk.connected && wk.writer) {
      wk.writer->Write(kMsgShutdown, wk.out_seq++, std::string());
      wk.proc.CloseStdin();
      wk.proc.Wait(nullptr, 500);
    }
    wk.proc.Reap();
  }
}

util::Rng& ProcSampler::sample_rng(int w) {
  return w == 0 ? primary_rng_ : sample_rngs_[static_cast<size_t>(w - 1)];
}

util::Rng& ProcSampler::env_stream(int w) {
  return w == 0 ? primary_env_.rng()
                : env_mirrors_[static_cast<size_t>(w - 1)];
}

std::vector<util::Rng*> ProcSampler::SplitRngs() {
  std::vector<util::Rng*> rngs;
  rngs.reserve(2 * sample_rngs_.size());
  for (int w = 1; w < num_workers_; ++w) {
    rngs.push_back(&sample_rngs_[static_cast<size_t>(w - 1)]);
    rngs.push_back(&env_mirrors_[static_cast<size_t>(w - 1)]);
  }
  return rngs;
}

void ProcSampler::SpawnWorker(int w) {
  Worker& wk = workers_[static_cast<size_t>(w)];
  const bool up = util::RetryWithBackoff(options_.respawn_backoff, [&] {
    wk.proc.Reap();
    wk.reader.reset();
    wk.writer.reset();
    wk.out_seq = 0;
    wk.connected = false;
    ++wk.incarnation;

    const std::vector<std::string> argv = {
        options_.worker_binary,
        "--worker-id", std::to_string(w),
        "--incarnation", std::to_string(wk.incarnation)};
    if (!wk.proc.Start(argv)) return false;
    wk.reader = std::make_unique<util::FrameReader>(wk.proc.stdout_fd());
    wk.writer = std::make_unique<util::FrameWriter>(wk.proc.stdin_fd());

    WorkerInit init;
    init.config = primary_env_.config();
    if (!CampusIdFromName(primary_env_.dataset().campus.name, init.campus)) {
      return false;  // Unreachable: the ctor validated the name.
    }
    if (!wk.writer->Write(kMsgInit, wk.out_seq++, EncodeWorkerInit(init))) {
      return false;
    }
    util::Frame frame;
    // Generous fixed deadline: a worker that cannot say hello within a
    // minute is broken, not slow (the env rebuild takes well under that).
    const util::IpcStatus status = wk.reader->Read(frame, 60000);
    WorkerHello hello;
    if (status != util::IpcStatus::kOk || frame.type != kMsgHello ||
        !DecodeWorkerHello(frame.payload, hello) ||
        hello.protocol_version != kWorkerProtocolVersion ||
        hello.worker_id != w ||
        hello.num_agents != primary_env_.num_agents() ||
        hello.obs_dim != primary_env_.obs_dim() ||
        hello.state_dim != primary_env_.state_dim()) {
      AGSC_LOG(kWarning) << "proc sampler: worker " << w
                         << " handshake failed ("
                         << util::IpcStatusName(status) << ")";
      wk.proc.Reap();
      return false;
    }
    wk.connected = true;
    return true;
  });
  if (!up) {
    std::ostringstream msg;
    msg << "proc sampler: worker " << w << " (" << options_.worker_binary
        << ") failed to spawn and handshake after "
        << options_.respawn_backoff.max_attempts << " attempts";
    throw ProcWorkerError(msg.str());
  }
}

void ProcSampler::FailWorker(int w, const std::string& why) {
  Worker& wk = workers_[static_cast<size_t>(w)];
  AGSC_LOG(kWarning) << "proc sampler: worker " << w << " failed (" << why
                     << "); killing and respawning for deterministic replay";
  wk.proc.Reap();
  wk.reader.reset();
  wk.writer.reset();
  wk.connected = false;
  ++lifetime_respawns_;
  if (++collect_respawns_ > options_.max_respawns) {
    std::ostringstream msg;
    msg << "proc sampler: worker " << w << " failed (" << why
        << ") and the respawn budget (" << options_.max_respawns
        << " per collect) is exhausted";
    throw ProcWorkerError(msg.str());
  }
  const int failures = ++consecutive_failures_[static_cast<size_t>(w)];
  const double backoff_ms = options_.respawn_backoff.BackoffMs(
      std::min(failures + 1, options_.respawn_backoff.max_attempts));
  if (backoff_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<long>(backoff_ms)));
  }
}

bool ProcSampler::SendPrefix(int w) {
  Worker& wk = workers_[static_cast<size_t>(w)];
  EpisodePrefix prefix;
  prefix.flags = naive_env_ ? kPrefixNaiveEnv : 0;
  prefix.rng_state = episode_rng_[static_cast<size_t>(w)];
  prefix.replay = replay_log_[static_cast<size_t>(w)];
  pending_prefix_[static_cast<size_t>(w)] = 1;
  return wk.writer->Write(kMsgEpisodePrefix, wk.out_seq++,
                          EncodeEpisodePrefix(prefix));
}

bool ProcSampler::SendStep(int w, const WorkerActions& actions) {
  Worker& wk = workers_[static_cast<size_t>(w)];
  pending_prefix_[static_cast<size_t>(w)] = 0;
  return wk.writer->Write(kMsgStep, wk.out_seq++,
                          EncodeWorkerActions(actions));
}

bool ProcSampler::ReadResult(int w, long timeout_ms, WorkerStepResult& out,
                             std::string* why) {
  Worker& wk = workers_[static_cast<size_t>(w)];
  util::Frame frame;
  const util::IpcStatus status = wk.reader->Read(frame, timeout_ms);
  if (status != util::IpcStatus::kOk) {
    if (status == util::IpcStatus::kTimeout) {
      // A hung worker: unlike VecSampler's fail-fast watchdog this is
      // recoverable, but kill it hard so the straggler cannot write a
      // stale frame into a respawned successor's conversation.
      wk.proc.Kill(SIGKILL);
    }
    if (why != nullptr) *why = std::string("read: ") + IpcStatusName(status);
    return false;
  }
  if (frame.type != kMsgStepResult ||
      !DecodeWorkerStepResult(frame.payload, out)) {
    if (why != nullptr) *why = "malformed result frame";
    return false;
  }
  const size_t num_agents = static_cast<size_t>(primary_env_.num_agents());
  const size_t obs_dim = static_cast<size_t>(primary_env_.obs_dim());
  bool shape_ok = out.observations.size() == num_agents &&
                  out.state.size() ==
                      static_cast<size_t>(primary_env_.state_dim());
  for (const std::vector<float>& obs : out.observations) {
    shape_ok = shape_ok && obs.size() == obs_dim;
  }
  if (!out.is_reset) {
    shape_ok = shape_ok && out.rewards.size() == num_agents &&
               out.he_neighbors.size() == num_agents &&
               out.ho_neighbors.size() == num_agents;
  }
  if (!shape_ok) {
    if (why != nullptr) *why = "result shape mismatch";
    return false;
  }
  return true;
}

WorkerStepResult ProcSampler::AwaitResult(int w) {
  for (;;) {
    Worker& wk = workers_[static_cast<size_t>(w)];
    std::string why = "not connected";
    WorkerStepResult result;
    bool ok = false;
    if (wk.connected) {
      long timeout = options_.step_deadline_ms;
      if (timeout > 0 && pending_prefix_[static_cast<size_t>(w)] != 0) {
        // A prefix reply covers env rebuild + silent replay of the episode
        // so far, not just one step.
        timeout = timeout * static_cast<long>(
                                replay_log_[static_cast<size_t>(w)].size() + 2) +
                  kSpawnGraceMs;
      }
      ok = ReadResult(w, timeout, result, &why);
      if (ok &&
          result.is_reset != replay_log_[static_cast<size_t>(w)].empty()) {
        ok = false;
        why = "result kind does not match the episode position";
      }
    }
    if (ok) {
      // Mirror the worker's post-step env stream so the next prefix —
      // ordinary reset or crash replay — resumes the exact position.
      env_stream(w).LoadState(result.rng_state);
      consecutive_failures_[static_cast<size_t>(w)] = 0;
      pending_prefix_[static_cast<size_t>(w)] = 0;
      return result;
    }
    FailWorker(w, why);
    SpawnWorker(w);
    // Fresh incarnation: replay the episode deterministically. A failed
    // prefix write loops back into FailWorker until the budget runs out.
    if (!SendPrefix(w)) continue;
  }
}

void ProcSampler::Collect(int episodes, const BatchActFn& act,
                          MultiAgentBuffer& buffer,
                          std::vector<env::Metrics>& metrics) {
  if (episodes <= 0) return;
  collect_respawns_ = 0;
  const int num_agents = primary_env_.num_agents();
  const int w_count = num_workers_;

  // Worker-local outputs, merged in worker-index order at the end — the
  // same merge contract as VecSampler, so the result never depends on
  // worker timing.
  std::vector<MultiAgentBuffer> wbufs;
  wbufs.reserve(static_cast<size_t>(w_count));
  for (int w = 0; w < w_count; ++w) wbufs.emplace_back(num_agents);
  std::vector<std::vector<env::Metrics>> wmetrics(
      static_cast<size_t>(w_count));
  std::vector<WorkerStepResult> cur(static_cast<size_t>(w_count));
  std::vector<WorkerActions> step_msgs(static_cast<size_t>(w_count));
  std::vector<std::vector<std::array<float, 2>>> raw(
      static_cast<size_t>(w_count),
      std::vector<std::array<float, 2>>(static_cast<size_t>(num_agents)));
  std::vector<std::vector<float>> logps(
      static_cast<size_t>(w_count),
      std::vector<float>(static_cast<size_t>(num_agents)));
  std::vector<uint8_t> running;
  std::vector<int> run_ids;

  // Batched-action scratch, identical use to VecSampler::Collect.
  std::vector<const std::vector<float>*> rows;
  std::vector<util::Rng*> rngs;
  std::vector<std::array<float, 2>> batch_actions;
  std::vector<float> batch_logps;

  const auto check_stop = [&](int round, int timeslot) {
    if (stop_check_ && stop_check_()) {
      std::ostringstream msg;
      msg << "rollout interrupted by stop request (round " << round
          << ", timeslot " << timeslot << "); partial episodes discarded";
      throw util::InterruptedError(msg.str());
    }
  };

  // Episodes are dealt round-robin, so each round's active workers form a
  // prefix 0..active-1 of the worker indices.
  const int rounds = (episodes + w_count - 1) / w_count;
  for (int r = 0; r < rounds; ++r) {
    check_stop(r, 0);
    const int active = std::min(w_count, episodes - r * w_count);

    // Episode starts: snapshot each worker's episode-start RNG position,
    // send all prefixes first so the resets run concurrently, then collect
    // the replies in worker order.
    for (int w = 0; w < active; ++w) {
      episode_rng_[static_cast<size_t>(w)] = env_stream(w).SaveState();
      replay_log_[static_cast<size_t>(w)].clear();
      if (!workers_[static_cast<size_t>(w)].connected) SpawnWorker(w);
      SendPrefix(w);  // Failures surface in AwaitResult and are recovered.
    }
    for (int w = 0; w < active; ++w) {
      cur[static_cast<size_t>(w)] = AwaitResult(w);
    }

    running.assign(static_cast<size_t>(active), 1);
    int num_running = active;
    int timeslot = 0;
    while (num_running > 0) {
      check_stop(r, timeslot);
      run_ids.clear();
      for (int w = 0; w < active; ++w) {
        if (running[static_cast<size_t>(w)]) run_ids.push_back(w);
      }

      // Batched action selection on this thread: one forward per agent
      // covering all running workers, each row sampled from its own worker
      // stream in ascending worker order — the exact computation VecSampler
      // performs, hence bit-equal actions and log-probs.
      for (int w : run_ids) {
        step_msgs[static_cast<size_t>(w)].per_agent.assign(
            static_cast<size_t>(num_agents), {});
      }
      for (int k = 0; k < num_agents; ++k) {
        rows.clear();
        rngs.clear();
        for (int w : run_ids) {
          rows.push_back(
              &cur[static_cast<size_t>(w)]
                   .observations[static_cast<size_t>(k)]);
          rngs.push_back(&sample_rng(w));
        }
        batch_actions.assign(run_ids.size(), {});
        batch_logps.assign(run_ids.size(), 0.0f);
        act(k, rows, rngs, batch_actions, batch_logps);
        for (size_t i = 0; i < run_ids.size(); ++i) {
          const int w = run_ids[i];
          raw[static_cast<size_t>(w)][static_cast<size_t>(k)] =
              batch_actions[i];
          logps[static_cast<size_t>(w)][static_cast<size_t>(k)] =
              batch_logps[i];
          step_msgs[static_cast<size_t>(w)]
              .per_agent[static_cast<size_t>(k)] = batch_actions[i];
        }
      }

      // Send phase: record each action in the replay log *before* any I/O
      // (a crash at any later point replays it), then fire all steps so
      // the workers run their slots concurrently. Send failures are left
      // for the read phase, which observes the dead pipe and recovers.
      for (int w : run_ids) {
        replay_log_[static_cast<size_t>(w)].push_back(
            step_msgs[static_cast<size_t>(w)]);
        if (workers_[static_cast<size_t>(w)].connected) {
          SendStep(w, step_msgs[static_cast<size_t>(w)]);
        }
      }

      // Read phase, ascending worker order. Any fault — EOF, timeout,
      // checksum/sequence mismatch, shape mismatch — funnels through
      // AwaitResult's respawn-and-replay loop and comes back as the exact
      // result the healthy worker would have produced.
      for (int w : run_ids) {
        WorkerStepResult next = AwaitResult(w);
        const bool episode_done = next.done;
        MultiAgentBuffer& b = wbufs[static_cast<size_t>(w)];
        const WorkerStepResult& prev = cur[static_cast<size_t>(w)];
        for (int k = 0; k < num_agents; ++k) {
          AgentRollout& ar = b.agents[static_cast<size_t>(k)];
          ar.obs.push_back(prev.observations[static_cast<size_t>(k)]);
          ar.next_obs.push_back(next.observations[static_cast<size_t>(k)]);
          ar.action_dir.push_back(
              raw[static_cast<size_t>(w)][static_cast<size_t>(k)][0]);
          ar.action_speed.push_back(
              raw[static_cast<size_t>(w)][static_cast<size_t>(k)][1]);
          ar.logp_old.push_back(
              logps[static_cast<size_t>(w)][static_cast<size_t>(k)]);
          ar.reward_ext.push_back(
              static_cast<float>(next.rewards[static_cast<size_t>(k)]));
          const std::vector<int32_t>& he =
              next.he_neighbors[static_cast<size_t>(k)];
          const std::vector<int32_t>& ho =
              next.ho_neighbors[static_cast<size_t>(k)];
          ar.he_neighbors.emplace_back(he.begin(), he.end());
          ar.ho_neighbors.emplace_back(ho.begin(), ho.end());
          ar.done.push_back(next.done ? 1 : 0);
        }
        b.states.push_back(prev.state);
        b.next_states.push_back(next.state);
        b.done.push_back(next.done ? 1 : 0);
        if (episode_done) {
          wmetrics[static_cast<size_t>(w)].push_back(next.metrics);
          running[static_cast<size_t>(w)] = 0;
        }
        cur[static_cast<size_t>(w)] = std::move(next);
      }

      num_running = 0;
      for (uint8_t flag : running) num_running += flag != 0 ? 1 : 0;
      ++timeslot;
    }
  }

  for (int w = 0; w < w_count; ++w) {
    buffer.Append(wbufs[static_cast<size_t>(w)]);
    metrics.insert(metrics.end(), wmetrics[static_cast<size_t>(w)].begin(),
                   wmetrics[static_cast<size_t>(w)].end());
  }
}

}  // namespace agsc::core
