#include "core/proc_sampler.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/logging.h"
#include "util/shutdown.h"

namespace agsc::core {

namespace {

// Same stream-id layout as VecSampler: worker w > 0 samples from id 2w and
// steps its environment from id 2w+1; worker 0 owns no split ids.
uint64_t SampleStreamId(int w) { return 2 * static_cast<uint64_t>(w); }
uint64_t EnvStreamId(int w) { return 2 * static_cast<uint64_t>(w) + 1; }

// Extra read budget for an episode-prefix reply from a fresh incarnation:
// the worker first rebuilds its dataset/env, which the per-step deadline
// was never meant to cover.
constexpr long kSpawnGraceMs = 15000;

long RemainingMs(const std::chrono::steady_clock::time_point& deadline) {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
      .count();
}

}  // namespace

ProcSampler::ProcSampler(env::ScEnv& primary_env, util::Rng& primary_rng,
                         int num_workers, uint64_t seed, Options options)
    : primary_env_(primary_env),
      primary_rng_(primary_rng),
      num_workers_(num_workers),
      options_(std::move(options)) {
  if (num_workers < 1) {
    throw std::invalid_argument("ProcSampler: num_workers must be >= 1");
  }
  if (!remote() && options_.worker_binary.empty()) {
    throw std::invalid_argument("ProcSampler: worker_binary is required");
  }
  map::CampusId campus;
  if (!CampusIdFromName(primary_env_.dataset().campus.name, campus)) {
    throw std::invalid_argument(
        "ProcSampler: environment dataset is not a named campus; worker "
        "processes cannot rebuild it");
  }
  // A worker dying between our poll and our write must surface as EPIPE on
  // that worker's pipe, not kill the whole trainer (socket sends are
  // already covered by MSG_NOSIGNAL in FrameWriter).
  util::IgnoreSigpipe();
  if (remote()) {
    std::string host;
    int port = 0;
    std::string parse_error;
    if (!util::ParseHostPort(options_.listen_address, &host, &port,
                             &parse_error)) {
      throw util::NetError("ProcSampler: bad listen address: " + parse_error);
    }
    std::string error;
    if (!listener_.Listen(host, port, &error)) {
      throw util::NetError("ProcSampler: cannot listen on '" +
                           options_.listen_address + "': " + error);
    }
    AGSC_LOG(kInfo) << "proc sampler: listening for " << num_workers
                    << " remote worker(s) on " << host << ":"
                    << listener_.bound_port();
  }

  const util::Rng base(seed);
  sample_rngs_.reserve(static_cast<size_t>(num_workers - 1));
  env_mirrors_.reserve(static_cast<size_t>(num_workers - 1));
  for (int w = 1; w < num_workers; ++w) {
    sample_rngs_.push_back(base.Split(SampleStreamId(w)));
    env_mirrors_.push_back(base.Split(EnvStreamId(w)));
  }
  workers_.resize(static_cast<size_t>(num_workers));
  episode_rng_.resize(static_cast<size_t>(num_workers));
  replay_log_.resize(static_cast<size_t>(num_workers));
  consecutive_failures_.assign(static_cast<size_t>(num_workers), 0);
  pending_prefix_.assign(static_cast<size_t>(num_workers), 0);
}

ProcSampler::~ProcSampler() {
  for (size_t w = 0; w < workers_.size(); ++w) {
    Worker& wk = workers_[w];
    if (wk.connected && wk.writer) {
      // Bounded: a wedged peer must not block the trainer's destructor.
      wk.writer->Write(kMsgShutdown, wk.out_seq++, std::string(),
                       /*timeout_ms=*/500);
      if (!remote()) {
        wk.proc.CloseStdin();
        wk.proc.Wait(nullptr, 500);
      }
    }
    if (wk.fd >= 0) {
      ::close(wk.fd);
      wk.fd = -1;
    }
    wk.proc.Reap();
  }
  for (auto& [id, pending] : parked_) {
    if (pending.fd >= 0) ::close(pending.fd);
  }
}

util::Rng& ProcSampler::sample_rng(int w) {
  return w == 0 ? primary_rng_ : sample_rngs_[static_cast<size_t>(w - 1)];
}

util::Rng& ProcSampler::env_stream(int w) {
  return w == 0 ? primary_env_.rng()
                : env_mirrors_[static_cast<size_t>(w - 1)];
}

std::vector<util::Rng*> ProcSampler::SplitRngs() {
  std::vector<util::Rng*> rngs;
  rngs.reserve(2 * sample_rngs_.size());
  for (int w = 1; w < num_workers_; ++w) {
    rngs.push_back(&sample_rngs_[static_cast<size_t>(w - 1)]);
    rngs.push_back(&env_mirrors_[static_cast<size_t>(w - 1)]);
  }
  return rngs;
}

void ProcSampler::ResetTransport(Worker& wk) {
  if (wk.fd >= 0) {
    // Shutdown first: a straggler blocked mid-write on the far side must
    // observe the teardown immediately, and close alone can linger while
    // unread data sits in flight. The worker process survives (unlike a
    // local SIGKILL) and re-registers.
    ::shutdown(wk.fd, SHUT_RDWR);
    ::close(wk.fd);
    wk.fd = -1;
  }
  wk.proc.Reap();
  wk.reader.reset();
  wk.writer.reset();
  wk.out_seq = 0;
  wk.connected = false;
}

bool ProcSampler::SpawnLocal(int w) {
  Worker& wk = workers_[static_cast<size_t>(w)];
  const std::vector<std::string> argv = {
      options_.worker_binary,
      "--worker-id", std::to_string(w),
      "--incarnation", std::to_string(wk.incarnation)};
  if (!wk.proc.Start(argv)) return false;
  if (options_.send_buffer_bytes > 0) {
    // Test hook: a tiny pipe makes a large episode-prefix frame exceed the
    // kernel buffer, so a worker that stops draining trips the bounded
    // write instead of hiding behind buffering. Kernel clamps to >= 1 page.
    ::fcntl(wk.proc.stdin_fd(), F_SETPIPE_SZ, options_.send_buffer_bytes);
  }
  wk.reader = std::make_unique<util::FrameReader>(wk.proc.stdout_fd());
  wk.writer = std::make_unique<util::FrameWriter>(wk.proc.stdin_fd());
  return true;
}

bool ProcSampler::AttachRemote(int w) {
  Worker& wk = workers_[static_cast<size_t>(w)];
  const auto take = [&](PendingConn&& conn) {
    wk.fd = conn.fd;
    wk.reader = std::move(conn.reader);
    wk.writer = std::make_unique<util::FrameWriter>(wk.fd);
  };
  const auto parked = parked_.find(w);
  if (parked != parked_.end()) {
    take(std::move(parked->second));
    parked_.erase(parked);
    return true;
  }
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.handshake_timeout_ms);
  for (;;) {
    const long remaining = std::max(0L, RemainingMs(deadline));
    const int fd = listener_.Accept(remaining);
    if (fd == -1) return false;  // Handshake budget exhausted.
    if (fd < 0) {
      AGSC_LOG(kWarning) << "proc sampler: accept failed";
      return false;
    }
    if (options_.send_buffer_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.send_buffer_bytes,
                   sizeof(options_.send_buffer_bytes));
    }
    PendingConn conn;
    conn.fd = fd;
    conn.reader = std::make_unique<util::FrameReader>(fd);
    util::Frame frame;
    const util::IpcStatus status = conn.reader->Read(frame, 5000);
    WorkerRegister reg;
    if (status != util::IpcStatus::kOk || frame.type != kMsgRegister ||
        !DecodeWorkerRegister(frame.payload, reg) ||
        reg.protocol_version != kWorkerProtocolVersion ||
        reg.worker_id < 0 || reg.worker_id >= num_workers_) {
      AGSC_LOG(kWarning) << "proc sampler: rejected a connection with a bad "
                            "registration ("
                         << util::IpcStatusName(status) << ")";
      ::close(fd);
      continue;
    }
    if (reg.worker_id == w) {
      take(std::move(conn));
      return true;
    }
    // Another slot registered first; park it (latest registration wins —
    // an older parked fd is a dead predecessor connection).
    PendingConn& slot = parked_[reg.worker_id];
    if (slot.fd >= 0) ::close(slot.fd);
    slot = std::move(conn);
  }
}

bool ProcSampler::Handshake(int w) {
  Worker& wk = workers_[static_cast<size_t>(w)];
  WorkerInit init;
  init.config = primary_env_.config();
  if (!CampusIdFromName(primary_env_.dataset().campus.name, init.campus)) {
    return false;  // Unreachable: the ctor validated the name.
  }
  if (wk.writer->Write(kMsgInit, wk.out_seq++, EncodeWorkerInit(init),
                       options_.handshake_timeout_ms) !=
      util::IpcStatus::kOk) {
    ResetTransport(wk);
    return false;
  }
  util::Frame frame;
  // Generous deadline: a worker that cannot say hello within a minute is
  // broken, not slow (the env rebuild takes well under that).
  const util::IpcStatus status =
      wk.reader->Read(frame, options_.handshake_timeout_ms);
  WorkerHello hello;
  if (status != util::IpcStatus::kOk || frame.type != kMsgHello ||
      !DecodeWorkerHello(frame.payload, hello) ||
      hello.protocol_version != kWorkerProtocolVersion ||
      hello.worker_id != w ||
      hello.num_agents != primary_env_.num_agents() ||
      hello.obs_dim != primary_env_.obs_dim() ||
      hello.state_dim != primary_env_.state_dim()) {
    AGSC_LOG(kWarning) << "proc sampler: worker " << w
                       << " handshake failed ("
                       << util::IpcStatusName(status) << ")";
    ResetTransport(wk);
    return false;
  }
  wk.connected = true;
  return true;
}

void ProcSampler::SpawnWorker(int w) {
  Worker& wk = workers_[static_cast<size_t>(w)];
  const bool up = util::RetryWithBackoff(options_.respawn_backoff, [&] {
    ResetTransport(wk);
    ++wk.incarnation;
    if (remote() ? !AttachRemote(w) : !SpawnLocal(w)) return false;
    return Handshake(w);
  });
  if (!up) {
    std::ostringstream msg;
    if (remote()) {
      msg << "proc sampler: no remote worker registered for slot " << w
          << " on " << options_.listen_address << " (bound port "
          << listener_.bound_port() << ") within "
          << options_.respawn_backoff.max_attempts << " attempts";
    } else {
      msg << "proc sampler: worker " << w << " (" << options_.worker_binary
          << ") failed to spawn and handshake after "
          << options_.respawn_backoff.max_attempts << " attempts";
    }
    throw ProcWorkerError(msg.str());
  }
}

void ProcSampler::FailWorker(int w, const std::string& why) {
  Worker& wk = workers_[static_cast<size_t>(w)];
  AGSC_LOG(kWarning) << "proc sampler: worker " << w << " failed (" << why
                     << "); " << (remote() ? "dropping the connection"
                                           : "killing and respawning")
                     << " for deterministic replay";
  ResetTransport(wk);
  ++lifetime_respawns_;
  if (++collect_respawns_ > options_.max_respawns) {
    std::ostringstream msg;
    msg << "proc sampler: worker " << w << " failed (" << why
        << ") and the respawn budget (" << options_.max_respawns
        << " per collect) is exhausted";
    throw ProcWorkerError(msg.str());
  }
  const int failures = ++consecutive_failures_[static_cast<size_t>(w)];
  const double backoff_ms = options_.respawn_backoff.BackoffMs(
      std::min(failures + 1, options_.respawn_backoff.max_attempts));
  if (backoff_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<long>(backoff_ms)));
  }
}

bool ProcSampler::SendPrefix(int w) {
  Worker& wk = workers_[static_cast<size_t>(w)];
  EpisodePrefix prefix;
  prefix.flags = (naive_env_ ? kPrefixNaiveEnv : 0) |
                 (scalar_channel_ ? kPrefixScalarChannel : 0);
  prefix.rng_state = episode_rng_[static_cast<size_t>(w)];
  prefix.replay = replay_log_[static_cast<size_t>(w)];
  pending_prefix_[static_cast<size_t>(w)] = 1;
  // The prefix is the one frame that can outgrow a kernel buffer (a crash
  // replay late in an episode carries the whole action log), so the
  // bounded write is what protects the trainer from a peer that stops
  // draining: kTimeout here escalates exactly like a read failure.
  const util::IpcStatus status =
      wk.writer->Write(kMsgEpisodePrefix, wk.out_seq++,
                       EncodeEpisodePrefix(prefix), write_timeout_ms());
  if (status == util::IpcStatus::kTimeout) {
    AGSC_LOG(kWarning) << "proc sampler: worker " << w
                       << " stopped draining its pipe (prefix write timed "
                          "out)";
    // Same hard cutoff as a read timeout: the straggler never received the
    // full replay and must not write a stale frame into a respawned
    // successor's conversation.
    if (remote()) {
      if (wk.fd >= 0) ::shutdown(wk.fd, SHUT_RDWR);
    } else {
      wk.proc.Kill(SIGKILL);
    }
  }
  if (status != util::IpcStatus::kOk) {
    // The peer cannot have a coherent view of the episode; there is nothing
    // to await on this transport. Leaving `connected` set would make the
    // caller wait out the full scaled prefix-read deadline (deadline_ms x
    // replay length) for a reply that can never come.
    wk.connected = false;
  }
  return status == util::IpcStatus::kOk;
}

bool ProcSampler::SendStep(int w, const WorkerActions& actions) {
  Worker& wk = workers_[static_cast<size_t>(w)];
  pending_prefix_[static_cast<size_t>(w)] = 0;
  return wk.writer->Write(kMsgStep, wk.out_seq++, EncodeWorkerActions(actions),
                          write_timeout_ms()) == util::IpcStatus::kOk;
}

bool ProcSampler::ReadResult(int w, long timeout_ms, WorkerStepResult& out,
                             std::string* why) {
  Worker& wk = workers_[static_cast<size_t>(w)];
  util::Frame frame;
  const util::IpcStatus status = wk.reader->Read(frame, timeout_ms);
  if (status != util::IpcStatus::kOk) {
    if (status == util::IpcStatus::kTimeout) {
      // A hung worker: unlike VecSampler's fail-fast watchdog this is
      // recoverable, but cut it off hard so the straggler cannot write a
      // stale frame into a respawned successor's conversation — SIGKILL
      // locally, socket shutdown remotely (FailWorker closes the fd).
      if (remote()) {
        if (wk.fd >= 0) ::shutdown(wk.fd, SHUT_RDWR);
      } else {
        wk.proc.Kill(SIGKILL);
      }
    }
    if (why != nullptr) *why = std::string("read: ") + IpcStatusName(status);
    return false;
  }
  if (frame.type != kMsgStepResult ||
      !DecodeWorkerStepResult(frame.payload, out)) {
    if (why != nullptr) *why = "malformed result frame";
    return false;
  }
  const size_t num_agents = static_cast<size_t>(primary_env_.num_agents());
  const size_t obs_dim = static_cast<size_t>(primary_env_.obs_dim());
  bool shape_ok = out.observations.size() == num_agents &&
                  out.state.size() ==
                      static_cast<size_t>(primary_env_.state_dim());
  for (const std::vector<float>& obs : out.observations) {
    shape_ok = shape_ok && obs.size() == obs_dim;
  }
  if (!out.is_reset) {
    shape_ok = shape_ok && out.rewards.size() == num_agents &&
               out.he_neighbors.size() == num_agents &&
               out.ho_neighbors.size() == num_agents;
  }
  if (!shape_ok) {
    if (why != nullptr) *why = "result shape mismatch";
    return false;
  }
  return true;
}

WorkerStepResult ProcSampler::AwaitResult(int w) {
  for (;;) {
    Worker& wk = workers_[static_cast<size_t>(w)];
    std::string why = "not connected";
    WorkerStepResult result;
    bool ok = false;
    if (wk.connected) {
      // 0 = "block forever" in Options terms, -1 on the IPC sentinel.
      long timeout = options_.step_deadline_ms > 0
                         ? options_.step_deadline_ms
                         : -1;
      if (timeout > 0 && pending_prefix_[static_cast<size_t>(w)] != 0) {
        // A prefix reply covers env rebuild + silent replay of the episode
        // so far, not just one step.
        timeout = timeout * static_cast<long>(
                                replay_log_[static_cast<size_t>(w)].size() + 2) +
                  kSpawnGraceMs;
      }
      ok = ReadResult(w, timeout, result, &why);
      if (ok &&
          result.is_reset != replay_log_[static_cast<size_t>(w)].empty()) {
        ok = false;
        why = "result kind does not match the episode position";
      }
    }
    if (ok) {
      // Mirror the worker's post-step env stream so the next prefix —
      // ordinary reset or crash replay — resumes the exact position.
      env_stream(w).LoadState(result.rng_state);
      consecutive_failures_[static_cast<size_t>(w)] = 0;
      pending_prefix_[static_cast<size_t>(w)] = 0;
      return result;
    }
    FailWorker(w, why);
    SpawnWorker(w);
    // Fresh incarnation: replay the episode deterministically. A prefix
    // write that itself fails escalates on the spot — the peer never got
    // the replay, so waiting for its reply would burn the whole scaled
    // prefix-read deadline. FailWorker enforces the respawn budget, so
    // this cannot loop forever.
    while (!SendPrefix(w)) {
      FailWorker(w, "prefix write failed");
      SpawnWorker(w);
    }
  }
}

void ProcSampler::Collect(int episodes, const BatchActFn& act,
                          MultiAgentBuffer& buffer,
                          std::vector<env::Metrics>& metrics) {
  if (episodes <= 0) return;
  collect_respawns_ = 0;
  const int num_agents = primary_env_.num_agents();
  const int w_count = num_workers_;

  // Worker-local outputs, merged in worker-index order at the end — the
  // same merge contract as VecSampler, so the result never depends on
  // worker timing.
  std::vector<MultiAgentBuffer> wbufs;
  wbufs.reserve(static_cast<size_t>(w_count));
  for (int w = 0; w < w_count; ++w) wbufs.emplace_back(num_agents);
  std::vector<std::vector<env::Metrics>> wmetrics(
      static_cast<size_t>(w_count));
  std::vector<WorkerStepResult> cur(static_cast<size_t>(w_count));
  std::vector<WorkerActions> step_msgs(static_cast<size_t>(w_count));
  std::vector<std::vector<std::array<float, 2>>> raw(
      static_cast<size_t>(w_count),
      std::vector<std::array<float, 2>>(static_cast<size_t>(num_agents)));
  std::vector<std::vector<float>> logps(
      static_cast<size_t>(w_count),
      std::vector<float>(static_cast<size_t>(num_agents)));
  std::vector<uint8_t> running;
  std::vector<int> run_ids;

  // Batched-action scratch, identical use to VecSampler::Collect.
  std::vector<const std::vector<float>*> rows;
  std::vector<util::Rng*> rngs;
  std::vector<std::array<float, 2>> batch_actions;
  std::vector<float> batch_logps;

  const auto check_stop = [&](int round, int timeslot) {
    if (stop_check_ && stop_check_()) {
      std::ostringstream msg;
      msg << "rollout interrupted by stop request (round " << round
          << ", timeslot " << timeslot << "); partial episodes discarded";
      throw util::InterruptedError(msg.str());
    }
  };

  // Episodes are dealt round-robin, so each round's active workers form a
  // prefix 0..active-1 of the worker indices.
  const int rounds = (episodes + w_count - 1) / w_count;
  for (int r = 0; r < rounds; ++r) {
    check_stop(r, 0);
    const int active = std::min(w_count, episodes - r * w_count);

    // Episode starts: snapshot each worker's episode-start RNG position,
    // send all prefixes first so the resets run concurrently, then collect
    // the replies in worker order.
    for (int w = 0; w < active; ++w) {
      episode_rng_[static_cast<size_t>(w)] = env_stream(w).SaveState();
      replay_log_[static_cast<size_t>(w)].clear();
      if (!workers_[static_cast<size_t>(w)].connected) SpawnWorker(w);
      SendPrefix(w);  // Failures surface in AwaitResult and are recovered.
    }
    for (int w = 0; w < active; ++w) {
      cur[static_cast<size_t>(w)] = AwaitResult(w);
    }

    running.assign(static_cast<size_t>(active), 1);
    int num_running = active;
    int timeslot = 0;
    while (num_running > 0) {
      check_stop(r, timeslot);
      run_ids.clear();
      for (int w = 0; w < active; ++w) {
        if (running[static_cast<size_t>(w)]) run_ids.push_back(w);
      }

      // Batched action selection on this thread: one forward per agent
      // covering all running workers, each row sampled from its own worker
      // stream in ascending worker order — the exact computation VecSampler
      // performs, hence bit-equal actions and log-probs.
      for (int w : run_ids) {
        step_msgs[static_cast<size_t>(w)].per_agent.assign(
            static_cast<size_t>(num_agents), {});
      }
      for (int k = 0; k < num_agents; ++k) {
        rows.clear();
        rngs.clear();
        for (int w : run_ids) {
          rows.push_back(
              &cur[static_cast<size_t>(w)]
                   .observations[static_cast<size_t>(k)]);
          rngs.push_back(&sample_rng(w));
        }
        batch_actions.assign(run_ids.size(), {});
        batch_logps.assign(run_ids.size(), 0.0f);
        act(k, rows, rngs, batch_actions, batch_logps);
        for (size_t i = 0; i < run_ids.size(); ++i) {
          const int w = run_ids[i];
          raw[static_cast<size_t>(w)][static_cast<size_t>(k)] =
              batch_actions[i];
          logps[static_cast<size_t>(w)][static_cast<size_t>(k)] =
              batch_logps[i];
          step_msgs[static_cast<size_t>(w)]
              .per_agent[static_cast<size_t>(k)] = batch_actions[i];
        }
      }

      // Send phase: record each action in the replay log *before* any I/O
      // (a crash at any later point replays it), then fire all steps so
      // the workers run their slots concurrently. Send failures are left
      // for the read phase, which observes the dead pipe and recovers.
      for (int w : run_ids) {
        replay_log_[static_cast<size_t>(w)].push_back(
            step_msgs[static_cast<size_t>(w)]);
        if (workers_[static_cast<size_t>(w)].connected) {
          SendStep(w, step_msgs[static_cast<size_t>(w)]);
        }
      }

      // Read phase, ascending worker order. Any fault — EOF, timeout,
      // checksum/sequence mismatch, shape mismatch — funnels through
      // AwaitResult's respawn-and-replay loop and comes back as the exact
      // result the healthy worker would have produced.
      for (int w : run_ids) {
        WorkerStepResult next = AwaitResult(w);
        const bool episode_done = next.done;
        MultiAgentBuffer& b = wbufs[static_cast<size_t>(w)];
        const WorkerStepResult& prev = cur[static_cast<size_t>(w)];
        for (int k = 0; k < num_agents; ++k) {
          AgentRollout& ar = b.agents[static_cast<size_t>(k)];
          ar.obs.push_back(prev.observations[static_cast<size_t>(k)]);
          ar.next_obs.push_back(next.observations[static_cast<size_t>(k)]);
          ar.action_dir.push_back(
              raw[static_cast<size_t>(w)][static_cast<size_t>(k)][0]);
          ar.action_speed.push_back(
              raw[static_cast<size_t>(w)][static_cast<size_t>(k)][1]);
          ar.logp_old.push_back(
              logps[static_cast<size_t>(w)][static_cast<size_t>(k)]);
          ar.reward_ext.push_back(
              static_cast<float>(next.rewards[static_cast<size_t>(k)]));
          const std::vector<int32_t>& he =
              next.he_neighbors[static_cast<size_t>(k)];
          const std::vector<int32_t>& ho =
              next.ho_neighbors[static_cast<size_t>(k)];
          ar.he_neighbors.emplace_back(he.begin(), he.end());
          ar.ho_neighbors.emplace_back(ho.begin(), ho.end());
          ar.done.push_back(next.done ? 1 : 0);
        }
        b.states.push_back(prev.state);
        b.next_states.push_back(next.state);
        b.done.push_back(next.done ? 1 : 0);
        if (episode_done) {
          wmetrics[static_cast<size_t>(w)].push_back(next.metrics);
          running[static_cast<size_t>(w)] = 0;
        }
        cur[static_cast<size_t>(w)] = std::move(next);
      }

      num_running = 0;
      for (uint8_t flag : running) num_running += flag != 0 ? 1 : 0;
      ++timeslot;
    }
  }

  for (int w = 0; w < w_count; ++w) {
    buffer.Append(wbufs[static_cast<size_t>(w)]);
    metrics.insert(metrics.end(), wmetrics[static_cast<size_t>(w)].begin(),
                   wmetrics[static_cast<size_t>(w)].end());
  }
}

}  // namespace agsc::core
