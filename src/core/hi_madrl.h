#ifndef AGSC_CORE_HI_MADRL_H_
#define AGSC_CORE_HI_MADRL_H_

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/copo.h"
#include "core/eoi.h"
#include "core/evaluator.h"
#include "core/policy.h"
#include "core/proc_sampler.h"
#include "core/rollout.h"
#include "core/vec_sampler.h"
#include "env/sc_env.h"
#include "nn/optimizer.h"
#include "util/retry.h"

namespace agsc::core {

/// Thrown by Train when the divergence guard has exhausted its learning-rate
/// backoff budget (TrainConfig::max_lr_backoffs) and updates are still
/// non-finite: the run cannot make progress. Train flushes a final
/// checkpoint before letting this propagate, so the last good state is on
/// disk.
class TrainingDiverged : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Which multi-agent actor-critic serves as the base module (Section V):
/// IPPO (independent critics on local obs) or MAPPO (critics on the global
/// state).
enum class BaseAlgo { kIppo, kMappo };

/// Full training configuration of h/i-MADRL (Algorithm 1). Disabling both
/// plug-ins reduces the trainer to plain IPPO/MAPPO, which is how the
/// ablations and the MAPPO baseline are run.
struct TrainConfig {
  BaseAlgo base = BaseAlgo::kIppo;
  int iterations = 100;          ///< N outer iterations.
  int episodes_per_iteration = 4;
  int policy_epochs = 4;         ///< M1.
  int lcf_epochs = 2;            ///< M2.
  int minibatch = 256;
  float gamma = 0.95f;
  /// <0 uses the paper's one-step advantage (Eqn. 24); otherwise GAE lambda.
  float gae_lambda = -1.0f;
  float clip = 0.2f;             ///< PPO clip epsilon.
  float actor_lr = 3e-4f;
  float critic_lr = 1e-3f;
  float entropy_coef = 1e-3f;
  float max_grad_norm = 10.0f;

  // --- i-EOI plug-in (Section V-A) ---
  bool use_eoi = true;
  float omega_in = 0.003f;        ///< Intrinsic weight (Eqn. 19, Table III).
  /// >= 0 linearly anneals omega_in to this value over training (Table IV).
  float omega_in_final = -1.0f;
  EoiConfig eoi;

  // --- h-CoPO plug-in (Section V-B) ---
  bool use_copo = true;
  /// true = h-CoPO (separate HE/HO neighbor advantages + chi); false = the
  /// plain CoPO of the h/i-MADRL(CoPO) baseline (merged neighbor set).
  bool hetero_copo = true;
  float lcf_lr = 50.0f;           ///< Outer meta step on the LCF degrees.
  float max_lcf_step_deg = 3.0f;  ///< Per-minibatch LCF step clamp.

  // --- Architecture variants swept by Table III ---
  bool share_params = false;       ///< SP: one network for all UVs.
  bool centralized_critic = false; ///< CC: V^k takes the global state.

  // --- Divergence guard (robustness) ---
  /// Detect non-finite losses/grad norms/parameters during updates, roll
  /// the affected network back to its last good state and skip the
  /// poisoned minibatch instead of propagating NaN.
  bool divergence_guard = true;
  /// After this many *consecutive* anomalous iterations, halve the actor
  /// and critic learning rates (with a warning) instead of crashing.
  int anomaly_backoff_after = 3;
  float lr_backoff_factor = 0.5f;
  /// Give up after this many learning-rate backoffs: the next one throws
  /// TrainingDiverged instead of halving again (Train flushes a final
  /// checkpoint first). 0 = never give up (the legacy behavior).
  int max_lr_backoffs = 0;

  // --- Long-run supervisor (robustness) ---
  /// Cooperative stop hook (e.g. util::ShutdownRequested), polled at
  /// iteration boundaries and at every sampling timeslot. When it fires
  /// mid-collect the partial iteration is abandoned via
  /// util::InterruptedError; Train flushes a final checkpoint and rethrows.
  std::function<bool()> stop_check;
  /// Watchdog deadline for each parallel rollout reset/step batch, in
  /// milliseconds (0 = disabled). A hung worker turns into a
  /// util::WatchdogTimeoutError naming the stuck worker and timeslot
  /// instead of a deadlock. Effective only with num_workers > 1 (the
  /// single-worker pool runs inline). Fail-fast: no checkpoint is flushed
  /// on timeout, since the hung task may still be mutating trainer state.
  long watchdog_ms = 0;
  /// Run the oracle self-checks (indexed env vs naive linear scan, blocked
  /// GEMM vs naive reference) at the start of every `oracle_check_every`-th
  /// iteration, including the first. On mismatch the affected subsystem is
  /// logged loudly and permanently downgraded to its reference path (see
  /// IterationStats::*_oracle_fallback); the downgrade is recorded in
  /// checkpoints and reapplied on resume. 0 = disabled.
  int oracle_check_every = 0;
  /// Timeslots stepped by each env oracle self-check.
  int oracle_check_steps = 16;
  /// Retry policy for checkpoint writes (transient I/O failures are
  /// retried with exponential backoff before the write is abandoned).
  util::RetryPolicy io_retry;

  // --- Periodic auto-checkpointing (crash recovery) ---
  /// When non-empty and checkpoint_every > 0, Train() writes a v2
  /// checkpoint to this directory every `checkpoint_every` iterations
  /// (and after the final one), updates a `latest` pointer file, and
  /// retains only the newest `checkpoint_keep` files.
  std::string checkpoint_dir;
  int checkpoint_every = 0;
  int checkpoint_keep = 3;

  // --- Parallel rollout collection ---
  /// Rollout workers for on-policy sampling. 1 (the default) runs the
  /// vectorized sampler with a single worker, which is bit-identical to the
  /// legacy sequential sampler and spawns no threads. W > 1 runs W
  /// independent environment replicas in lock-step on a thread pool with
  /// per-worker `Rng::Split` streams; results are bit-identical for a given
  /// (seed, num_workers) pair and independent of thread scheduling. 0
  /// selects the legacy sequential sampler directly (reference
  /// implementation, kept for the equivalence tests).
  int num_workers = 1;

  // --- Crash-isolated subprocess rollout collection ---
  /// > 0 replaces the in-process sampler with `proc_workers` agsc_worker
  /// subprocesses (core/proc_sampler.h): each worker owns one environment
  /// replica in its own address space, and a crashed/hung/garbage-emitting
  /// worker is respawned and replayed deterministically instead of taking
  /// the trainer down. Buffers and checkpoints are bit-identical to
  /// `num_workers == proc_workers` for the same seed (checkpoints from
  /// either mode resume in the other). Takes precedence over num_workers;
  /// the CLI enforces mutual exclusivity.
  int proc_workers = 0;
  /// Path to the agsc_worker binary; required when proc_workers > 0 and
  /// listen_address is empty.
  std::string worker_binary;
  /// Non-empty switches the proc sampler to remote mode: instead of
  /// fork/exec'ing workers it listens on this "HOST:PORT" (port 0 =
  /// kernel-assigned, see SamplerBoundPort()) and `proc_workers`
  /// externally launched `agsc_worker --connect` processes claim the
  /// slots. Same protocol, same bit-exactness contract; a dropped
  /// connection replays like a local crash. The CLI sets this from
  /// --listen + --remote-workers.
  std::string listen_address;
  /// Backoff schedule between respawn attempts of a failed worker, and the
  /// total respawns tolerated per collection round before Train gives up
  /// with ProcWorkerError (the CLI maps it to util::kExitWorkerFailed).
  util::RetryPolicy worker_respawn;
  int worker_max_respawns = 8;

  // --- NN compute kernels (process-wide, applied in the ctor) ---
  /// Worker threads for the blocked GEMM kernels in the optimize phase
  /// (nn::KernelConfig::nn_threads). 0 = single-threaded. Results are
  /// bit-identical for every value: the row partitioning never changes an
  /// output element's accumulation order.
  int nn_threads = 0;
  /// Use the retained naive reference GEMMs instead of the blocked kernels
  /// (debug / benchmark baseline; bit-identical results, just slower).
  bool nn_naive_kernels = false;

  NetConfig net;
  uint64_t seed = 1;
  bool verbose = false;
};

/// Per-iteration training diagnostics.
struct IterationStats {
  int iteration = 0;
  env::Metrics rollout_metrics;   ///< Mean metrics of this iter's episodes.
  float mean_reward_ext = 0.0f;
  float mean_reward_int = 0.0f;
  float eoi_loss = 0.0f;
  float actor_grad_norm = 0.0f;   ///< ||grad J_CO|| (sample complexity).
  float value_loss = 0.0f;
  long total_env_steps = 0;       ///< Cumulative agent-steps consumed.
  /// Non-finite losses/grads/params caught by the divergence guard this
  /// iteration; each one rolled the affected network back and skipped the
  /// poisoned minibatch.
  int anomalies = 0;
  /// True if repeated anomalies triggered a learning-rate halving at the
  /// end of this iteration.
  bool lr_backoff = false;
  /// True while the environment runs on the naive linear-scan path after an
  /// oracle self-check mismatch (sticky for the rest of the run).
  bool env_oracle_fallback = false;
  /// True while the NN GEMMs run on the naive reference kernels after an
  /// oracle self-check mismatch (sticky for the rest of the run).
  bool nn_oracle_fallback = false;
  /// True while the environment runs on the scalar per-link ChannelModel
  /// path after a batched-channel oracle mismatch (sticky for the run).
  bool channel_oracle_fallback = false;
};

/// The h/i-MADRL trainer (Algorithm 1): a PPO-family base module plus the
/// i-EOI and h-CoPO plug-ins. Also acts as an evaluation `Policy`.
class HiMadrlTrainer : public Policy {
 public:
  HiMadrlTrainer(env::ScEnv& env, const TrainConfig& config);

  /// One outer iteration: rollout -> i-EOI update -> M1 policy epochs ->
  /// M2 LCF meta-updates. Returns diagnostics.
  IterationStats TrainIteration();

  /// Runs `config.iterations` iterations (or `iterations` if >= 0),
  /// auto-checkpointing per `config.checkpoint_*`.
  std::vector<IterationStats> Train(int iterations = -1);

  /// Trains until the *cumulative* iteration counter reaches
  /// `total_iterations` — after a checkpoint resume this runs only the
  /// remaining iterations (no-op if already past the target).
  std::vector<IterationStats> TrainTo(int total_iterations);

  // Policy interface (deterministic evaluation uses the Gaussian mode).
  env::UvAction Act(const env::ScEnv& env, int k,
                    const std::vector<float>& obs, util::Rng& rng,
                    bool deterministic) override;

  const std::vector<Lcf>& lcfs() const { return lcfs_; }
  const TrainConfig& config() const { return config_; }
  long total_env_steps() const { return total_env_steps_; }
  /// Cumulative iterations trained (restored by LoadCheckpoint).
  int iteration() const { return iteration_; }
  /// Learning-rate backoffs taken so far (counted against max_lr_backoffs).
  int lr_backoff_count() const { return lr_backoff_count_; }
  /// Oracle-fallback state (sticky; persisted in checkpoints).
  bool env_oracle_fallback() const { return env_fallback_; }
  bool nn_oracle_fallback() const { return nn_fallback_; }
  bool channel_oracle_fallback() const { return channel_fallback_; }

  /// Total scalar parameters across all live networks.
  int TotalParameterCount() const;

  /// Inference-only parameter bytes (actors only; critics and the i-EOI
  /// classifier are train-time constructs under CTDE, Section VI-F).
  int ActorParameterBytes() const;

  /// Current effective intrinsic-reward weight (after annealing).
  float CurrentOmegaIn() const;

  /// Runs one round of on-policy sampling (Algorithm 1, Lines 5-11) into
  /// the shared buffer: `config.episodes_per_iteration` episodes through
  /// the vectorized sampler (`num_workers >= 1`) or the legacy sequential
  /// loop (`num_workers == 0`). Public so the sampling-throughput bench and
  /// the determinism tests can drive collection without a policy update.
  void CollectRollouts();

  /// The shared on-policy buffer filled by CollectRollouts.
  const MultiAgentBuffer& buffer() const { return buffer_; }

  /// Every IterationStats produced through Train/TrainTo over this
  /// trainer's lifetime. Unlike Train's return value this survives an
  /// abnormal exit (interrupt, divergence), so the CLI can still flush a
  /// stats CSV covering the completed iterations.
  const std::vector<IterationStats>& stats_history() const {
    return stats_history_;
  }

  /// Runs one optimize phase (i-EOI update + theta_old snapshot + M1 policy
  /// epochs + M2 LCF meta-updates) on whatever CollectRollouts already put
  /// in the buffer, without sampling or touching the iteration counters.
  /// Public so bench_micro_nn's end-to-end PpoUpdate benchmark can time the
  /// optimize hot path in isolation; Train/TrainIteration remain the real
  /// entry points.
  void OptimizeOnCurrentBuffer();

  /// Writes a v2 ("AGSCNN02") checkpoint to `path`: all network
  /// parameters, per-agent LCFs, Adam moments + step counts + learning
  /// rates, trainer and environment RNG state, and the iteration/env-step
  /// counters — everything needed for LoadCheckpoint + Train to be
  /// bit-exact with an uninterrupted run. The file carries a CRC-32 and an
  /// architecture fingerprint, and is written atomically (tmp + fsync +
  /// rename). Returns false on I/O failure.
  bool SaveCheckpoint(const std::string& path);

  /// Restores a checkpoint written by SaveCheckpoint into this trainer.
  /// v2 files are checksum-verified and rejected loudly on an architecture
  /// fingerprint mismatch; legacy v1 ("AGSCNN01") parameter files are
  /// still accepted (params + LCFs only, no optimizer/RNG state). The
  /// trainer must have been constructed with the same architecture.
  /// Returns false on failure, leaving the trainer unchanged.
  bool LoadCheckpoint(const std::string& path);

  /// Restores network parameters + LCFs from a checkpoint, ignoring
  /// optimizer, RNG, counter, and worker-stream state. This is the serving
  /// loader: unlike LoadCheckpoint it accepts checkpoints saved with any
  /// num_workers (the vrng section does not describe inference state), so a
  /// dispatch server with a 1-worker staging trainer can promote checkpoints
  /// from a multi-worker training run. v2 files are still checksum-verified
  /// and fingerprint-checked; malformed files are rejected loudly with the
  /// trainer left unchanged. Returns false on failure.
  bool LoadCheckpointForInference(const std::string& path);

  /// Live policy head for agent `k` (the shared net under SP). Used to copy
  /// actor weights into an immutable serving snapshot; the deterministic
  /// action for `k` is actor(k).mean_net() on ActorInputFor(k, obs).
  const GaussianActor& actor(int k) const { return *Nets(k).actor; }

  /// Public ActorInput: obs plus the one-hot agent id appended under
  /// share_params (identity otherwise). Exposed so serving code can build
  /// bit-identical actor rows without going through Act.
  std::vector<float> ActorInputFor(int k, const std::vector<float>& obs) const {
    return ActorInput(k, obs);
  }

  /// Restores the newest checkpoint in `dir` that passes validation,
  /// falling back to older retained files when the newest one is
  /// truncated or corrupted. Returns false if no checkpoint loads.
  bool LoadLatestCheckpoint(const std::string& dir);

  /// Hash of the env dims and architecture-relevant TrainConfig fields;
  /// stored in checkpoints and compared on load.
  uint64_t ArchitectureFingerprint() const;

  /// Remote-worker mode only (TrainConfig::listen_address set): the TCP
  /// port the sampler is listening on — resolves a port-0 listen address
  /// to the kernel's choice so the CLI can publish it (--port-file) before
  /// any worker connects. 0 in every other sampler mode.
  int SamplerBoundPort() const {
    return proc_sampler_ ? proc_sampler_->bound_port() : 0;
  }

 private:
  struct AgentNets {
    std::unique_ptr<GaussianActor> actor;
    std::unique_ptr<GaussianActor> actor_old;  ///< theta_old (Line 13).
    std::unique_ptr<ValueNet> value;           ///< V^k.
    std::unique_ptr<ValueNet> value_he;        ///< V^k_HE.
    std::unique_ptr<ValueNet> value_ho;        ///< V^k_HO.
    std::unique_ptr<nn::Adam> actor_opt;
    std::unique_ptr<nn::Adam> value_opt;
  };

  AgentNets& Nets(int k) { return nets_[config_.share_params ? 0 : k]; }
  const AgentNets& Nets(int k) const {
    return nets_[config_.share_params ? 0 : k];
  }

  /// Actor input: raw obs, plus a one-hot agent id when parameters are
  /// shared (SP) so the shared network can distinguish UVs.
  std::vector<float> ActorInput(int k, const std::vector<float>& obs) const;
  /// Critic input: obs for IPPO, global state for MAPPO or CC (+ one-hot
  /// under SP).
  std::vector<float> CriticInput(int k, const std::vector<float>& obs,
                                 const std::vector<float>& state) const;

  /// Batched action selection across rollout workers for agent `k` (the
  /// VecSampler's BatchActFn): one actor forward over all rows, then
  /// per-row sampling from each worker's private stream.
  void BatchAct(int k, const std::vector<const std::vector<float>*>& obs_rows,
                const std::vector<util::Rng*>& rngs,
                std::vector<std::array<float, 2>>& actions_out,
                std::vector<float>& logps_out);
  float UpdateEoiAndRewards();
  void SnapshotOldPolicies();
  /// Returns {mean actor grad norm, mean value loss}.
  std::pair<float, float> PolicyUpdate();
  void LcfUpdate();

  /// All persistent network parameters in a stable order (actors, critics,
  /// V_all, i-EOI classifier).
  std::vector<nn::Variable> GatherNetParameters() const;
  /// All live Adam optimizers in a stable order matching the checkpoint.
  std::vector<nn::Adam*> GatherOptimizers();
  bool LoadCheckpointV1(const std::string& path);
  bool LoadCheckpointV2(const std::string& path);
  /// Writes ckpt_<iter>.agsc + the `latest` pointer and prunes old files.
  void WriteAutoCheckpoint();
  /// Writes a final auto-checkpoint on an abnormal Train exit, unless the
  /// current iteration already has one on disk.
  void FlushFinalCheckpoint();
  /// Halves actor/critic learning rates after repeated anomalous
  /// iterations; returns true if a backoff happened. Throws
  /// TrainingDiverged once max_lr_backoffs is exhausted.
  bool MaybeBackoffLearningRates();
  /// Runs the due oracle self-checks and applies any permanent fallback
  /// (env spatial index -> naive scan, blocked GEMM -> naive kernels).
  void RunOracleChecks();
  /// Applies the sticky fallback flags to the live env/replicas/kernels
  /// (after a self-check mismatch or a checkpoint restore).
  void ApplyOracleFallbacks();

  /// Worker count of whichever sampler is active (1 for the legacy
  /// sequential sampler) — the value the checkpoint `vrng` section keys on.
  int SamplerWorkerCount() const;
  /// Extra per-worker RNG streams of the active sampler in checkpoint
  /// order; empty for the legacy sampler.
  std::vector<util::Rng*> SamplerSplitRngs();

  env::ScEnv& env_;
  TrainConfig config_;
  util::Rng rng_;
  std::unique_ptr<VecSampler> sampler_;  ///< Null when num_workers == 0.
  std::unique_ptr<ProcSampler> proc_sampler_;  ///< Set when proc_workers > 0.
  std::vector<AgentNets> nets_;
  std::unique_ptr<ValueNet> value_all_;       ///< V_all on the state.
  std::unique_ptr<nn::Adam> value_all_opt_;
  std::unique_ptr<EoiClassifier> eoi_;
  std::vector<Lcf> lcfs_;
  MultiAgentBuffer buffer_;
  std::vector<env::Metrics> rollout_metrics_;
  std::vector<IterationStats> stats_history_;
  int iteration_ = 0;
  long total_env_steps_ = 0;
  int actor_input_dim_ = 0;
  int critic_input_dim_ = 0;
  int iter_anomalies_ = 0;        ///< Guard events in the current iteration.
  int anomaly_streak_ = 0;        ///< Consecutive anomalous iterations.
  int lr_backoff_count_ = 0;      ///< LR backoffs taken (vs max_lr_backoffs).
  bool env_fallback_ = false;     ///< Env downgraded to the naive scan path.
  bool nn_fallback_ = false;      ///< GEMMs downgraded to the naive kernels.
  bool channel_fallback_ = false; ///< Channel downgraded to the scalar path.
  int last_checkpoint_iter_ = -1; ///< Iteration of the newest auto-ckpt.
};

}  // namespace agsc::core

#endif  // AGSC_CORE_HI_MADRL_H_
