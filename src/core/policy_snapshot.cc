#include "core/policy_snapshot.h"

#include <stdexcept>
#include <utility>

#include "nn/serialize.h"
#include "util/rng.h"

namespace agsc::core {

std::shared_ptr<PolicySnapshot> PolicySnapshot::FromTrainer(
    const HiMadrlTrainer& trainer, std::string source_path) {
  auto snap = std::shared_ptr<PolicySnapshot>(new PolicySnapshot());
  const TrainConfig& config = trainer.config();
  snap->num_agents_ = static_cast<int>(trainer.lcfs().size());
  snap->share_params_ = config.share_params;
  snap->fingerprint_ = trainer.ArchitectureFingerprint();
  snap->source_path_ = std::move(source_path);

  const GaussianActor& first = trainer.actor(0);
  snap->input_dim_ = first.obs_dim();
  snap->obs_dim_ = snap->input_dim_ -
                   (snap->share_params_ ? snap->num_agents_ : 0);
  if (first.action_dim() != 2) {
    throw std::logic_error("PolicySnapshot: expected 2-D UV actions, got " +
                           std::to_string(first.action_dim()));
  }

  // One freshly-constructed head per distinct network; the orthogonal init
  // values are immediately overwritten by the trainer's parameters, so the
  // seed here is irrelevant — it just satisfies the ctor.
  util::Rng init_rng(1);
  const int num_heads = snap->share_params_ ? 1 : snap->num_agents_;
  for (int h = 0; h < num_heads; ++h) {
    const GaussianActor& src = trainer.actor(h);
    auto head = std::make_unique<GaussianActor>(
        snap->input_dim_, src.action_dim(), config.net, init_rng);
    const std::vector<nn::Variable> src_params = src.Parameters();
    std::vector<nn::Variable> dst_params = head->Parameters();
    nn::CopyParameters(src_params, dst_params);
    snap->heads_.push_back(std::move(head));
  }
  return snap;
}

void PolicySnapshot::FillRow(int agent, const std::vector<float>& obs,
                             nn::Tensor& batch, int r) const {
  for (int c = 0; c < obs_dim_; ++c) {
    batch(r, c) = obs[static_cast<size_t>(c)];
  }
  if (share_params_) {
    for (int j = 0; j < num_agents_; ++j) {
      batch(r, obs_dim_ + j) = j == agent ? 1.0f : 0.0f;
    }
  }
}

std::array<float, 2> PolicySnapshot::Act(int agent,
                                         const std::vector<float>& obs) const {
  const std::vector<Row> rows = {{agent, &obs}};
  std::vector<std::array<float, 2>> out;
  ActBatch(rows, out);
  return out[0];
}

void PolicySnapshot::ActBatch(
    const std::vector<Row>& rows,
    std::vector<std::array<float, 2>>& actions_out) const {
  actions_out.assign(rows.size(), {0.0f, 0.0f});
  std::vector<std::vector<int>> groups(heads_.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    if (row.agent < 0 || row.agent >= num_agents_) {
      throw std::invalid_argument("PolicySnapshot: agent " +
                                  std::to_string(row.agent) + " out of range");
    }
    if (row.obs == nullptr ||
        static_cast<int>(row.obs->size()) != obs_dim_) {
      throw std::invalid_argument("PolicySnapshot: bad observation width");
    }
    groups[share_params_ ? 0 : row.agent].push_back(static_cast<int>(i));
  }
  for (size_t g = 0; g < groups.size(); ++g) {
    const std::vector<int>& members = groups[g];
    if (members.empty()) continue;
    nn::Tensor batch(static_cast<int>(members.size()), input_dim_);
    for (size_t r = 0; r < members.size(); ++r) {
      const Row& row = rows[static_cast<size_t>(members[r])];
      FillRow(row.agent, *row.obs, batch, static_cast<int>(r));
    }
    const nn::Tensor modes = heads_[g]->mean_net().Infer(batch);
    for (size_t r = 0; r < members.size(); ++r) {
      actions_out[static_cast<size_t>(members[r])] = {
          modes(static_cast<int>(r), 0), modes(static_cast<int>(r), 1)};
    }
  }
}

std::shared_ptr<PolicySnapshot> LoadPolicySnapshot(HiMadrlTrainer& staging,
                                                   const std::string& path,
                                                   std::string* error) {
  if (!staging.LoadCheckpointForInference(path)) {
    if (error != nullptr) {
      *error = "checkpoint rejected: " + path +
               " (missing, corrupted, truncated, or architecture mismatch)";
    }
    return nullptr;
  }
  if (error != nullptr) error->clear();
  return PolicySnapshot::FromTrainer(staging, path);
}

}  // namespace agsc::core
