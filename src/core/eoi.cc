#include "core/eoi.h"

#include <algorithm>
#include <stdexcept>

#include "core/rollout.h"

namespace agsc::core {

namespace {

std::vector<int> LayerSizes(int in, const std::vector<int>& hidden, int out) {
  std::vector<int> sizes;
  sizes.push_back(in);
  sizes.insert(sizes.end(), hidden.begin(), hidden.end());
  sizes.push_back(out);
  return sizes;
}

}  // namespace

EoiClassifier::EoiClassifier(int obs_dim, int num_agents,
                             const EoiConfig& config, util::Rng& rng)
    : num_agents_(num_agents),
      config_(config),
      net_(LayerSizes(obs_dim, config.hidden, num_agents), rng,
           nn::Activation::kRelu, nn::Activation::kNone) {
  optimizer_ = std::make_unique<nn::Adam>(net_.Parameters(), config.lr);
}

std::vector<float> EoiClassifier::Probabilities(
    const std::vector<float>& obs) const {
  nn::Tensor row(1, static_cast<int>(obs.size()));
  for (size_t i = 0; i < obs.size(); ++i) row[static_cast<int>(i)] = obs[i];
  nn::CategoricalDist dist(net_.Forward(row));
  const nn::Tensor p = dist.Probabilities();
  std::vector<float> out(p.cols());
  for (int c = 0; c < p.cols(); ++c) out[c] = p(0, c);
  return out;
}

float EoiClassifier::IntrinsicReward(int k,
                                     const std::vector<float>& obs) const {
  return Probabilities(obs)[k];
}

std::vector<float> EoiClassifier::IntrinsicRewards(
    int k, const std::vector<std::vector<float>>& obs_rows) const {
  if (obs_rows.empty()) return {};
  nn::Tensor batch = PackBatch(obs_rows, AllIndices(obs_rows.size()));
  nn::CategoricalDist dist(net_.Forward(batch));
  const nn::Tensor p = dist.Probabilities();
  std::vector<float> out(p.rows());
  for (int r = 0; r < p.rows(); ++r) out[r] = p(r, k);
  return out;
}

float EoiClassifier::Update(
    const std::vector<const std::vector<std::vector<float>>*>& per_agent_obs,
    util::Rng& rng) {
  if (static_cast<int>(per_agent_obs.size()) != num_agents_) {
    throw std::invalid_argument("EoiClassifier::Update: agent count");
  }
  // Equal per-agent sample counts keep H(K) constant (Section V-A).
  size_t per_agent = SIZE_MAX;
  for (const auto* rows : per_agent_obs) {
    per_agent = std::min(per_agent, rows->size());
  }
  if (per_agent == 0) return 0.0f;

  // Assemble the balanced <o, k> dataset.
  std::vector<const std::vector<float>*> xs;
  std::vector<int> ys;
  for (int k = 0; k < num_agents_; ++k) {
    std::vector<int> idx = AllIndices(per_agent_obs[k]->size());
    rng.Shuffle(idx);
    for (size_t i = 0; i < per_agent; ++i) {
      xs.push_back(&(*per_agent_obs[k])[idx[i]]);
      ys.push_back(k);
    }
  }

  float last_loss = 0.0f;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const std::vector<std::vector<int>> batches =
        MakeMinibatches(xs.size(), config_.minibatch, rng);
    double loss_sum = 0.0;
    for (const std::vector<int>& batch : batches) {
      nn::Tensor x(static_cast<int>(batch.size()),
                   static_cast<int>(xs[0]->size()));
      std::vector<int> labels(batch.size());
      for (size_t r = 0; r < batch.size(); ++r) {
        const std::vector<float>& row = *xs[batch[r]];
        for (size_t c = 0; c < row.size(); ++c) {
          x(static_cast<int>(r), static_cast<int>(c)) = row[c];
        }
        labels[r] = ys[batch[r]];
      }
      nn::Variable logits = net_.Forward(x);
      // L_EOI = CE(p, one_hot(k)) + epsilon * CE(p, p)  (Eqn. 21).
      nn::Variable loss =
          nn::Add(nn::SoftmaxCrossEntropy(logits, labels),
                  nn::ScalarMul(nn::SoftmaxEntropy(logits), config_.epsilon));
      optimizer_->ZeroGrad();
      loss.Backward();
      optimizer_->Step();
      loss_sum += loss.value()(0, 0) * static_cast<double>(batch.size());
    }
    last_loss = static_cast<float>(loss_sum / static_cast<double>(xs.size()));
  }
  return last_loss;
}

}  // namespace agsc::core
