#ifndef AGSC_CORE_WORKER_PROTOCOL_H_
#define AGSC_CORE_WORKER_PROTOCOL_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "env/config.h"
#include "env/metrics.h"
#include "map/campus.h"
#include "util/rng.h"

namespace agsc::core {

/// Wire protocol between the trainer's ProcSampler and the agsc_worker
/// processes — local subprocesses over stdin/stdout pipes, or remote
/// `agsc_worker --connect` processes over TCP (util/net). Frames are
/// carried by util::FrameWriter/FrameReader (length-prefixed,
/// CRC-checksummed, sequence-numbered); this header owns the message-type
/// registry and the payload codecs.
///
/// Conversation (one per worker, per incarnation/connection):
///   worker  -> trainer  kMsgRegister        remote only: claim a worker slot
///   trainer -> worker   kMsgInit            campus + full EnvConfig
///   worker  -> trainer  kMsgHello           version + dims echo
///   repeat per episode:
///     trainer -> worker kMsgEpisodePrefix   env-RNG state + replay actions
///     worker  -> trainer kMsgStepResult     (reply to the prefix)
///     repeat per timeslot:
///       trainer -> worker kMsgStep          one slot's actions
///       worker  -> trainer kMsgStepResult
///   trainer -> worker   kMsgShutdown        clean exit
///
/// The prefix frame is both the per-episode reset and the crash-replay
/// vehicle: it carries the environment RNG state the episode must start
/// from plus the K actions already issued this episode. K = 0 is a plain
/// reset; K > 0 means "reset, replay these silently, and reply with the
/// K-th step's result" — which is exactly what a respawned worker needs to
/// resume as if the crash never happened.
///
/// All floats/doubles travel as raw bit patterns, so a replayed or
/// multi-process rollout is bit-identical to the in-process one.

/// v2 added kMsgRegister (remote workers over TCP). v3 appended the
/// EnvConfig channel-path fields (use_channel_batch / env_fast_math) to
/// kMsgInit and the kPrefixScalarChannel fallback flag.
inline constexpr uint32_t kWorkerProtocolVersion = 3;

enum WorkerMsgType : uint32_t {
  kMsgInit = 1,
  kMsgHello = 2,
  kMsgEpisodePrefix = 3,
  kMsgStep = 4,
  kMsgShutdown = 5,
  kMsgStepResult = 6,
  kMsgRegister = 7,
};

/// kMsgInit payload: everything a worker needs to rebuild the trainer's
/// environment deterministically (map::BuildDataset(campus, pois) + the
/// verbatim EnvConfig; the RNG state arrives per episode).
struct WorkerInit {
  map::CampusId campus = map::CampusId::kPurdue;
  env::EnvConfig config;
};

/// kMsgRegister payload: the first frame a remote (`--connect`) worker
/// sends on every fresh TCP connection, claiming its `--worker-id` slot.
/// `connect_seq` counts the worker's connections (0 = first) — the remote
/// analogue of the local incarnation number, and the scope the worker
/// fault campaigns key off. Local pipe workers never send this: their
/// identity is the pipe itself.
struct WorkerRegister {
  uint32_t protocol_version = kWorkerProtocolVersion;
  int32_t worker_id = 0;
  int32_t connect_seq = 0;
};

/// kMsgHello payload: the worker's view of the protocol and the rebuilt
/// env's dimensions; the trainer rejects any mismatch at spawn instead of
/// desynchronizing mid-collect.
struct WorkerHello {
  uint32_t protocol_version = kWorkerProtocolVersion;
  int32_t worker_id = 0;
  int32_t num_agents = 0;
  int32_t obs_dim = 0;
  int32_t state_dim = 0;
};

/// One slot's actions for every agent: the raw {direction, speed} floats
/// exactly as sampled; the worker widens them to env::UvAction the same way
/// VecSampler does.
struct WorkerActions {
  std::vector<std::array<float, 2>> per_agent;
};

/// kMsgEpisodePrefix payload (see the conversation diagram above).
struct EpisodePrefix {
  uint32_t flags = 0;  ///< kPrefix* bits when oracle fallbacks are on.
  std::array<uint64_t, util::Rng::kStateWords> rng_state{};
  std::vector<WorkerActions> replay;  ///< Actions already issued; may be empty.
};

inline constexpr uint32_t kPrefixNaiveEnv = 1u << 0;
/// The trainer's oracle guard downgraded the batched channel kernels to the
/// scalar per-link ChannelModel path; workers must mirror it (sticky, like
/// kPrefixNaiveEnv, and carried to respawned incarnations).
inline constexpr uint32_t kPrefixScalarChannel = 1u << 1;

/// kMsgStepResult payload: everything the trainer appends to the rollout
/// buffer for one slot, plus the worker's post-step env RNG state (the
/// trainer mirrors it so the next prefix — ordinary or crash-replay —
/// resumes the exact stream position).
struct WorkerStepResult {
  bool is_reset = false;
  bool done = false;
  std::vector<std::vector<float>> observations;
  std::vector<float> state;
  std::vector<double> rewards;                   ///< Empty for a reset.
  std::vector<std::vector<int32_t>> he_neighbors;  ///< Empty for a reset.
  std::vector<std::vector<int32_t>> ho_neighbors;  ///< Empty for a reset.
  std::array<uint64_t, util::Rng::kStateWords> rng_state{};
  env::Metrics metrics;  ///< Valid only when done.
};

std::string EncodeWorkerInit(const WorkerInit& init);
bool DecodeWorkerInit(const std::string& payload, WorkerInit& out);

std::string EncodeWorkerRegister(const WorkerRegister& reg);
bool DecodeWorkerRegister(const std::string& payload, WorkerRegister& out);

std::string EncodeWorkerHello(const WorkerHello& hello);
bool DecodeWorkerHello(const std::string& payload, WorkerHello& out);

std::string EncodeEpisodePrefix(const EpisodePrefix& prefix);
bool DecodeEpisodePrefix(const std::string& payload, EpisodePrefix& out);

std::string EncodeWorkerActions(const WorkerActions& actions);
bool DecodeWorkerActions(const std::string& payload, WorkerActions& out);

std::string EncodeWorkerStepResult(const WorkerStepResult& result);
bool DecodeWorkerStepResult(const std::string& payload, WorkerStepResult& out);

/// Maps a campus display name ("Purdue"/"NCSU") back to its id; false if
/// the name matches no campus. Used to derive the kMsgInit campus from the
/// trainer's live dataset.
bool CampusIdFromName(const std::string& name, map::CampusId& out);

}  // namespace agsc::core

#endif  // AGSC_CORE_WORKER_PROTOCOL_H_
