#include "core/evaluator.h"

namespace agsc::core {

EvalResult Evaluate(env::ScEnv& env, Policy& policy, int episodes,
                    uint64_t seed, bool deterministic) {
  EvalResult result;
  util::Rng rng(seed);
  for (int e = 0; e < episodes; ++e) {
    env::StepResult step = env.Reset();
    policy.BeginEpisode(env);
    while (!step.done) {
      std::vector<env::UvAction> actions(env.num_agents());
      for (int k = 0; k < env.num_agents(); ++k) {
        actions[k] =
            policy.Act(env, k, step.observations[k], rng, deterministic);
      }
      step = env.Step(actions);
    }
    result.episodes.push_back(env.EpisodeMetrics());
  }
  result.mean = env::Metrics::Average(result.episodes);
  return result;
}

}  // namespace agsc::core
