#include "core/evaluator.h"

#include "util/shutdown.h"

namespace agsc::core {

EvalResult Evaluate(env::ScEnv& env, Policy& policy, int episodes,
                    uint64_t seed, bool deterministic,
                    const std::function<bool()>& stop_check) {
  const auto stop = [&stop_check] {
    return stop_check ? stop_check() : util::ShutdownRequested();
  };
  EvalResult result;
  util::Rng rng(seed);
  // One reused StepResult: the out-param Step overwrites it in place (its
  // observations are consumed by policy.Act before the next Step call).
  env::StepResult step;
  std::vector<env::UvAction> actions(env.num_agents());
  for (int e = 0; e < episodes; ++e) {
    env.Reset(step);
    policy.BeginEpisode(env);
    while (!step.done) {
      // Timeslot-granular stop: an evaluation over many long episodes can
      // dominate a run's tail, so SIGINT must not have to wait it out.
      if (stop()) {
        throw util::InterruptedError("evaluation interrupted at episode " +
                                     std::to_string(e));
      }
      for (int k = 0; k < env.num_agents(); ++k) {
        actions[k] =
            policy.Act(env, k, step.observations[k], rng, deterministic);
      }
      env.Step(actions, step);
    }
    result.episodes.push_back(env.EpisodeMetrics());
  }
  result.mean = env::Metrics::Average(result.episodes);
  return result;
}

}  // namespace agsc::core
