#include "core/evaluator.h"

namespace agsc::core {

EvalResult Evaluate(env::ScEnv& env, Policy& policy, int episodes,
                    uint64_t seed, bool deterministic) {
  EvalResult result;
  util::Rng rng(seed);
  // One reused StepResult: the out-param Step overwrites it in place (its
  // observations are consumed by policy.Act before the next Step call).
  env::StepResult step;
  std::vector<env::UvAction> actions(env.num_agents());
  for (int e = 0; e < episodes; ++e) {
    env.Reset(step);
    policy.BeginEpisode(env);
    while (!step.done) {
      for (int k = 0; k < env.num_agents(); ++k) {
        actions[k] =
            policy.Act(env, k, step.observations[k], rng, deterministic);
      }
      env.Step(actions, step);
    }
    result.episodes.push_back(env.EpisodeMetrics());
  }
  result.mean = env::Metrics::Average(result.episodes);
  return result;
}

}  // namespace agsc::core
