#include "core/hi_madrl.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>

#include "core/oracle_guard.h"
#include "core/ppo.h"
#include "nn/serialize.h"
#include "util/fault_inject.h"
#include "util/logging.h"
#include "util/shutdown.h"

namespace agsc::core {

namespace {
constexpr double kRadToDeg = 180.0 / M_PI;

/// True when every element of every parameter is finite.
bool AllFinite(const std::vector<nn::Variable>& params) {
  for (const nn::Variable& p : params) {
    const nn::Tensor& t = p.value();
    for (int i = 0; i < t.size(); ++i) {
      if (!std::isfinite(t[i])) return false;
    }
  }
  return true;
}

uint64_t DoubleBits(double d) {
  uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

double BitsToDouble(uint64_t u) {
  double d = 0.0;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}
}  // namespace

HiMadrlTrainer::HiMadrlTrainer(env::ScEnv& env, const TrainConfig& config)
    : env_(env),
      config_(config),
      rng_(config.seed),
      buffer_(env.num_agents()) {
  // Install the NN kernel selection before any network is built. The config
  // is process-wide; with several trainers alive the last one constructed
  // wins, which is fine — every kernel choice is bit-identical, only speed
  // differs.
  nn::KernelConfig kernel_config;
  kernel_config.gemm = config_.nn_naive_kernels ? nn::GemmKernel::kNaive
                                                : nn::GemmKernel::kBlocked;
  kernel_config.nn_threads = config_.nn_threads;
  nn::SetKernelConfig(kernel_config);

  const int num_agents = env_.num_agents();
  const int id_dim = config_.share_params ? num_agents : 0;
  actor_input_dim_ = env_.obs_dim() + id_dim;
  const bool state_critic =
      config_.base == BaseAlgo::kMappo || config_.centralized_critic;
  critic_input_dim_ = (state_critic ? env_.state_dim() : env_.obs_dim()) +
                      id_dim;

  const int net_count = config_.share_params ? 1 : num_agents;
  nets_.resize(net_count);
  for (int i = 0; i < net_count; ++i) {
    AgentNets& n = nets_[i];
    n.actor = std::make_unique<GaussianActor>(
        actor_input_dim_, env::ScEnv::kActionDim, config_.net, rng_);
    n.actor_old = std::make_unique<GaussianActor>(
        actor_input_dim_, env::ScEnv::kActionDim, config_.net, rng_);
    n.value = std::make_unique<ValueNet>(critic_input_dim_, config_.net, rng_);
    n.actor_opt = std::make_unique<nn::Adam>(n.actor->Parameters(),
                                             config_.actor_lr);
    std::vector<nn::Variable> value_params = n.value->Parameters();
    if (config_.use_copo) {
      // Neighborhood value networks take the local observation (Section
      // V-B), augmented with the one-hot id under SP like the actor.
      n.value_he =
          std::make_unique<ValueNet>(actor_input_dim_, config_.net, rng_);
      n.value_ho =
          std::make_unique<ValueNet>(actor_input_dim_, config_.net, rng_);
      for (nn::Variable& p : n.value_he->Parameters()) {
        value_params.push_back(p);
      }
      for (nn::Variable& p : n.value_ho->Parameters()) {
        value_params.push_back(p);
      }
    }
    n.value_opt =
        std::make_unique<nn::Adam>(std::move(value_params), config_.critic_lr);
  }
  if (config_.use_copo) {
    value_all_ =
        std::make_unique<ValueNet>(env_.state_dim(), config_.net, rng_);
    value_all_opt_ = std::make_unique<nn::Adam>(value_all_->Parameters(),
                                                config_.critic_lr);
  }
  if (config_.use_eoi) {
    // The classifier sees the *raw* observation (no id features, which
    // would make the identification task trivial).
    eoi_ = std::make_unique<EoiClassifier>(env_.obs_dim(), num_agents,
                                           config_.eoi, rng_);
  }
  lcfs_.assign(num_agents, Lcf{});  // phi = 0, chi = 45 (Line 3).
  if (config_.proc_workers > 0) {
    // Crash-isolated subprocess collection. Workers are spawned lazily on
    // the first collect, so a trainer built only for checkpoint surgery
    // never forks.
    ProcSampler::Options opts;
    opts.worker_binary = config_.worker_binary;
    opts.step_deadline_ms = config_.watchdog_ms;
    opts.respawn_backoff = config_.worker_respawn;
    opts.max_respawns = config_.worker_max_respawns;
    opts.listen_address = config_.listen_address;
    proc_sampler_ = std::make_unique<ProcSampler>(
        env_, rng_, config_.proc_workers, config_.seed, std::move(opts));
    if (config_.stop_check) proc_sampler_->set_stop_check(config_.stop_check);
  } else if (config_.num_workers >= 1) {
    sampler_ = std::make_unique<VecSampler>(env_, rng_, config_.num_workers,
                                            config_.seed);
    if (config_.stop_check) sampler_->set_stop_check(config_.stop_check);
    sampler_->set_step_deadline_ms(config_.watchdog_ms);
  }
}

int HiMadrlTrainer::SamplerWorkerCount() const {
  if (proc_sampler_) return proc_sampler_->num_workers();
  if (sampler_) return sampler_->num_workers();
  return 1;
}

std::vector<util::Rng*> HiMadrlTrainer::SamplerSplitRngs() {
  if (proc_sampler_) return proc_sampler_->SplitRngs();
  if (sampler_) return sampler_->SplitRngs();
  return {};
}

std::vector<float> HiMadrlTrainer::ActorInput(
    int k, const std::vector<float>& obs) const {
  if (!config_.share_params) return obs;
  std::vector<float> input = obs;
  for (int j = 0; j < env_.num_agents(); ++j) {
    input.push_back(j == k ? 1.0f : 0.0f);
  }
  return input;
}

std::vector<float> HiMadrlTrainer::CriticInput(
    int k, const std::vector<float>& obs,
    const std::vector<float>& state) const {
  const bool state_critic =
      config_.base == BaseAlgo::kMappo || config_.centralized_critic;
  std::vector<float> input = state_critic ? state : obs;
  if (config_.share_params) {
    for (int j = 0; j < env_.num_agents(); ++j) {
      input.push_back(j == k ? 1.0f : 0.0f);
    }
  }
  return input;
}

void HiMadrlTrainer::BatchAct(
    int k, const std::vector<const std::vector<float>*>& obs_rows,
    const std::vector<util::Rng*>& rngs,
    std::vector<std::array<float, 2>>& actions_out,
    std::vector<float>& logps_out) {
  const int n = static_cast<int>(obs_rows.size());
  nn::Tensor batch(n, actor_input_dim_);
  for (int r = 0; r < n; ++r) {
    const std::vector<float> input = ActorInput(k, *obs_rows[r]);
    for (int c = 0; c < actor_input_dim_; ++c) {
      batch(r, c) = input[static_cast<size_t>(c)];
    }
  }
  // One forward + one log-prob graph for every worker's row; each row of
  // the MLP/log-prob math depends only on that row, so row r is bit-equal
  // to a single-row Act() on worker r's observation.
  nn::DiagGaussian dist = Nets(k).actor->Dist(batch);
  const nn::Tensor sampled = dist.SamplePerRow(rngs);
  const nn::Tensor logp = dist.LogProb(sampled).value();
  for (int r = 0; r < n; ++r) {
    actions_out[static_cast<size_t>(r)] = {sampled(r, 0), sampled(r, 1)};
    logps_out[static_cast<size_t>(r)] = logp(r, 0);
  }
}

void HiMadrlTrainer::CollectRollouts() {
  buffer_.Clear();
  rollout_metrics_.clear();
  const int num_agents = env_.num_agents();
  if (proc_sampler_) {
    proc_sampler_->Collect(
        config_.episodes_per_iteration,
        [this](int k, const std::vector<const std::vector<float>*>& obs_rows,
               const std::vector<util::Rng*>& rngs,
               std::vector<std::array<float, 2>>& actions_out,
               std::vector<float>& logps_out) {
          BatchAct(k, obs_rows, rngs, actions_out, logps_out);
        },
        buffer_, rollout_metrics_);
    total_env_steps_ += static_cast<long>(config_.episodes_per_iteration) *
                        env_.config().num_timeslots * num_agents;
    return;
  }
  if (sampler_) {
    sampler_->Collect(
        config_.episodes_per_iteration,
        [this](int k, const std::vector<const std::vector<float>*>& obs_rows,
               const std::vector<util::Rng*>& rngs,
               std::vector<std::array<float, 2>>& actions_out,
               std::vector<float>& logps_out) {
          BatchAct(k, obs_rows, rngs, actions_out, logps_out);
        },
        buffer_, rollout_metrics_);
    total_env_steps_ += static_cast<long>(config_.episodes_per_iteration) *
                        env_.config().num_timeslots * num_agents;
    return;
  }
  // Legacy sequential sampler (num_workers == 0): the reference
  // implementation the vectorized path is tested against. `cur`/`nxt` are
  // double-buffered StepResults (see VecSampler::Collect): the out-param
  // Step writes into nxt reusing its storage, then the two swap.
  env::StepResult cur, nxt;
  std::vector<env::UvAction> actions(num_agents);
  std::vector<float> logps(num_agents);
  std::vector<std::vector<float>> raw_actions(num_agents);
  for (int e = 0; e < config_.episodes_per_iteration; ++e) {
    env_.Reset(cur);
    while (true) {
      if (config_.stop_check && config_.stop_check()) {
        throw util::InterruptedError(
            "rollout interrupted by stop request (legacy sampler); partial "
            "episodes discarded");
      }
      for (int k = 0; k < num_agents; ++k) {
        raw_actions[k] =
            Nets(k).actor->Act(ActorInput(k, cur.observations[k]), rng_,
                               /*deterministic=*/false, &logps[k]);
        actions[k] = {raw_actions[k][0], raw_actions[k][1]};
      }
      env_.Step(actions, nxt);
      for (int k = 0; k < num_agents; ++k) {
        AgentRollout& r = buffer_.agents[k];
        r.obs.push_back(cur.observations[k]);
        r.next_obs.push_back(nxt.observations[k]);
        r.action_dir.push_back(raw_actions[k][0]);
        r.action_speed.push_back(raw_actions[k][1]);
        r.logp_old.push_back(logps[k]);
        r.reward_ext.push_back(static_cast<float>(nxt.rewards[k]));
        r.he_neighbors.push_back(env_.HeterogeneousNeighbors(k));
        r.ho_neighbors.push_back(env_.HomogeneousNeighbors(k));
        r.done.push_back(nxt.done ? 1 : 0);
      }
      buffer_.states.push_back(cur.state);
      buffer_.next_states.push_back(nxt.state);
      buffer_.done.push_back(nxt.done ? 1 : 0);
      const bool episode_done = nxt.done;
      std::swap(cur, nxt);
      if (episode_done) break;
    }
    rollout_metrics_.push_back(env_.EpisodeMetrics());
    total_env_steps_ +=
        static_cast<long>(env_.config().num_timeslots) * num_agents;
  }
}

float HiMadrlTrainer::CurrentOmegaIn() const {
  if (!config_.use_eoi) return 0.0f;
  if (config_.omega_in_final < 0.0f || config_.iterations <= 1) {
    return config_.omega_in;
  }
  const float progress = std::min(
      1.0f, static_cast<float>(iteration_) /
                static_cast<float>(config_.iterations - 1));
  return config_.omega_in +
         (config_.omega_in_final - config_.omega_in) * progress;
}

float HiMadrlTrainer::UpdateEoiAndRewards() {
  const int num_agents = env_.num_agents();
  const size_t n = buffer_.size();
  float eoi_loss = 0.0f;

  // Line 12: train the identity classifier on this iteration's buffer.
  if (config_.use_eoi) {
    std::vector<const std::vector<std::vector<float>>*> per_agent;
    per_agent.reserve(num_agents);
    for (int k = 0; k < num_agents; ++k) {
      per_agent.push_back(&buffer_.agents[k].obs);
    }
    eoi_loss = eoi_->Update(per_agent, rng_);
  }

  // Compound reward r^k = r_ext + omega_in * p_mu(k|o) (Eqn. 19, Line 16).
  const float omega_in = CurrentOmegaIn();
  for (int k = 0; k < num_agents; ++k) {
    AgentRollout& r = buffer_.agents[k];
    if (config_.use_eoi) {
      r.reward_int = eoi_->IntrinsicRewards(k, r.obs);
    } else {
      r.reward_int.assign(n, 0.0f);
    }
    r.reward.resize(n);
    for (size_t i = 0; i < n; ++i) {
      r.reward[i] = r.reward_ext[i] + omega_in * r.reward_int[i];
    }
  }

  // r_all (Eqn. 29) and the neighbor mean rewards (Eqn. 23). The neighbor
  // rewards are appended below, so clear any previous pass first — this
  // makes the update idempotent over one buffer (a repeated call, e.g. from
  // OptimizeOnCurrentBuffer in bench_micro_nn, must not grow the arrays).
  for (int k = 0; k < num_agents; ++k) {
    buffer_.agents[k].reward_he.clear();
    buffer_.agents[k].reward_ho.clear();
  }
  buffer_.reward_all.assign(n, 0.0f);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> rewards_at(num_agents);
    for (int k = 0; k < num_agents; ++k) {
      rewards_at[k] = buffer_.agents[k].reward[i];
      buffer_.reward_all[i] += buffer_.agents[k].reward[i];
    }
    for (int k = 0; k < num_agents; ++k) {
      AgentRollout& r = buffer_.agents[k];
      if (config_.hetero_copo) {
        r.reward_he.push_back(static_cast<float>(
            NeighborMeanReward(r.he_neighbors[i], rewards_at)));
        r.reward_ho.push_back(static_cast<float>(
            NeighborMeanReward(r.ho_neighbors[i], rewards_at)));
      } else {
        // Plain CoPO: one merged neighbor set (stored in the HE slot).
        std::vector<int> merged = r.he_neighbors[i];
        merged.insert(merged.end(), r.ho_neighbors[i].begin(),
                      r.ho_neighbors[i].end());
        std::sort(merged.begin(), merged.end());
        merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
        r.reward_he.push_back(
            static_cast<float>(NeighborMeanReward(merged, rewards_at)));
        r.reward_ho.push_back(0.0f);
      }
    }
  }
  return eoi_loss;
}

void HiMadrlTrainer::SnapshotOldPolicies() {
  for (AgentNets& n : nets_) {
    std::vector<nn::Variable> src = n.actor->Parameters();
    std::vector<nn::Variable> dst = n.actor_old->Parameters();
    nn::CopyParameters(src, dst);
  }
}

namespace {

/// Computes (normalized) one-step or GAE advantages for a reward stream.
AdvantageResult StreamAdvantages(const std::vector<float>& rewards,
                                 const std::vector<float>& values,
                                 const std::vector<float>& next_values,
                                 const std::vector<uint8_t>& dones,
                                 const TrainConfig& config, bool normalize) {
  AdvantageResult adv =
      config.gae_lambda < 0.0f
          ? OneStepAdvantages(rewards, values, next_values, dones,
                              config.gamma)
          : GaeAdvantages(rewards, values, next_values, dones, config.gamma,
                          config.gae_lambda);
  if (normalize) NormalizeInPlace(adv.advantages);
  return adv;
}

/// Elementwise dot product of two gradient snapshots.
double GradDot(const std::vector<nn::Tensor>& a,
               const std::vector<nn::Tensor>& b) {
  double dot = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    for (int j = 0; j < a[i].size(); ++j) {
      dot += static_cast<double>(a[i][j]) * b[i][j];
    }
  }
  return dot;
}

double GradNorm(const std::vector<nn::Tensor>& a) {
  double sq = 0.0;
  for (const nn::Tensor& t : a) {
    for (int j = 0; j < t.size(); ++j) {
      sq += static_cast<double>(t[j]) * t[j];
    }
  }
  return std::sqrt(sq);
}

std::vector<nn::Tensor> SnapshotGrads(std::vector<nn::Variable> params) {
  std::vector<nn::Tensor> out;
  out.reserve(params.size());
  for (nn::Variable& p : params) out.push_back(p.grad());
  return out;
}

void ZeroGrads(std::vector<nn::Variable> params) {
  for (nn::Variable& p : params) p.ZeroGrad();
}

}  // namespace

std::pair<float, float> HiMadrlTrainer::PolicyUpdate() {
  const int num_agents = env_.num_agents();
  const size_t n = buffer_.size();

  // Pre-build augmented input rows once per iteration.
  std::vector<std::vector<std::vector<float>>> actor_inputs(num_agents);
  std::vector<std::vector<std::vector<float>>> next_actor_inputs(num_agents);
  std::vector<std::vector<std::vector<float>>> critic_inputs(num_agents);
  std::vector<std::vector<std::vector<float>>> next_critic_inputs(num_agents);
  for (int k = 0; k < num_agents; ++k) {
    const AgentRollout& r = buffer_.agents[k];
    actor_inputs[k].reserve(n);
    for (size_t i = 0; i < n; ++i) {
      actor_inputs[k].push_back(ActorInput(k, r.obs[i]));
      next_actor_inputs[k].push_back(ActorInput(k, r.next_obs[i]));
      critic_inputs[k].push_back(
          CriticInput(k, r.obs[i], buffer_.states[i]));
      next_critic_inputs[k].push_back(
          CriticInput(k, r.next_obs[i], buffer_.next_states[i]));
    }
  }

  double grad_norm_sum = 0.0, value_loss_sum = 0.0;
  long grad_norm_count = 0, value_loss_count = 0;

  for (int epoch = 0; epoch < config_.policy_epochs; ++epoch) {
    for (int k = 0; k < num_agents; ++k) {
      AgentNets& nets = Nets(k);
      AgentRollout& r = buffer_.agents[k];

      // Value predictions (no grad) and advantage streams (Eqn. 24).
      const std::vector<float> v = nets.value->Values(critic_inputs[k]);
      const std::vector<float> vn =
          nets.value->Values(next_critic_inputs[k]);
      AdvantageResult adv_k =
          StreamAdvantages(r.reward, v, vn, r.done, config_, true);
      AdvantageResult adv_he, adv_ho;
      if (config_.use_copo) {
        const std::vector<float> vhe =
            nets.value_he->Values(actor_inputs[k]);
        const std::vector<float> vhe_n =
            nets.value_he->Values(next_actor_inputs[k]);
        adv_he = StreamAdvantages(r.reward_he, vhe, vhe_n, r.done, config_,
                                  true);
        const std::vector<float> vho =
            nets.value_ho->Values(actor_inputs[k]);
        const std::vector<float> vho_n =
            nets.value_ho->Values(next_actor_inputs[k]);
        adv_ho = StreamAdvantages(r.reward_ho, vho, vho_n, r.done, config_,
                                  true);
      }

      // Cooperation-aware advantage A_CO (Eqn. 27) or the base advantage.
      std::vector<float> a_co(n);
      for (size_t i = 0; i < n; ++i) {
        if (!config_.use_copo) {
          a_co[i] = adv_k.advantages[i];
        } else if (config_.hetero_copo) {
          a_co[i] = static_cast<float>(
              CoopAdvantage(adv_k.advantages[i], adv_he.advantages[i],
                            adv_ho.advantages[i], lcfs_[k]));
        } else {
          a_co[i] = static_cast<float>(CoopAdvantagePlain(
              adv_k.advantages[i], adv_he.advantages[i], lcfs_[k]));
        }
      }

      // Divergence guard: "last good" snapshots to roll back to when a
      // minibatch produces a non-finite loss, gradient, or parameter.
      std::vector<nn::Variable> actor_params = nets.actor->Parameters();
      std::vector<nn::Variable> value_params(nets.value_opt->params());
      std::vector<nn::Tensor> actor_good, value_good;
      if (config_.divergence_guard) {
        actor_good = nn::SnapshotParameters(actor_params);
        value_good = nn::SnapshotParameters(value_params);
      }

      for (const std::vector<int>& batch :
           MakeMinibatches(n, config_.minibatch, rng_)) {
        // --- Actor: maximize J_CO (Eqn. 28) + entropy bonus. ---
        nn::Tensor obs_b = PackBatch(actor_inputs[k], batch);
        nn::Tensor act_b = r.ActionBatch(batch);
        std::vector<float> logp_old_b(batch.size()), a_co_b(batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
          logp_old_b[i] = r.logp_old[batch[i]];
          a_co_b[i] = a_co[batch[i]];
        }
        nn::DiagGaussian dist = nets.actor->Dist(obs_b);
        nn::Variable logp = dist.LogProb(act_b);
        nn::Variable surrogate =
            PpoSurrogate(logp, logp_old_b, a_co_b, config_.clip);
        // -(surrogate + c*H); one fused node instead of Sub(Neg, ScalarMul),
        // bit-exact: negation distributes exactly over the rounded sum.
        nn::Variable actor_loss = nn::Neg(
            nn::AddScaled(surrogate, dist.Entropy(), config_.entropy_coef));
        float actor_loss_val = actor_loss.value()(0, 0);
        if (util::FaultInjector::Instance().PoisonLossNow()) {
          actor_loss_val = std::numeric_limits<float>::quiet_NaN();
        }
        nets.actor_opt->ZeroGrad();
        actor_loss.Backward();
        const float norm = nn::ClipGradNorm(actor_params,
                                            config_.max_grad_norm);
        if (config_.divergence_guard &&
            (!std::isfinite(actor_loss_val) || !std::isfinite(norm))) {
          // Poisoned minibatch: discard it entirely (actor and critics).
          nn::RestoreParameters(actor_good, actor_params);
          ++iter_anomalies_;
          continue;
        }
        grad_norm_sum += norm;
        ++grad_norm_count;
        nets.actor_opt->Step();
        if (config_.divergence_guard) {
          if (!AllFinite(actor_params)) {
            nn::RestoreParameters(actor_good, actor_params);
            ++iter_anomalies_;
            continue;
          }
          actor_good = nn::SnapshotParameters(actor_params);
        }

        // --- Critics: Eqn. (26) TD regression for V^k, V_HE, V_HO. ---
        auto value_target = [&](const AdvantageResult& adv) {
          nn::Tensor t(static_cast<int>(batch.size()), 1);
          for (size_t i = 0; i < batch.size(); ++i) {
            t(static_cast<int>(i), 0) = adv.returns[batch[i]];
          }
          return t;
        };
        nets.value_opt->ZeroGrad();
        nn::Tensor critic_b = PackBatch(critic_inputs[k], batch);
        nn::Variable v_loss =
            nn::MseLoss(nets.value->Forward(critic_b), value_target(adv_k));
        v_loss.Backward();
        const float v_loss_val = v_loss.value()(0, 0);
        float aux_loss_val = 0.0f;
        if (config_.use_copo) {
          nn::Variable he_loss =
              nn::MseLoss(nets.value_he->Forward(obs_b), value_target(adv_he));
          he_loss.Backward();
          nn::Variable ho_loss =
              nn::MseLoss(nets.value_ho->Forward(obs_b), value_target(adv_ho));
          ho_loss.Backward();
          aux_loss_val = he_loss.value()(0, 0) + ho_loss.value()(0, 0);
        }
        if (config_.divergence_guard &&
            (!std::isfinite(v_loss_val) || !std::isfinite(aux_loss_val))) {
          ++iter_anomalies_;
          continue;  // Params untouched: no step was taken.
        }
        value_loss_sum += v_loss_val;
        ++value_loss_count;
        nets.value_opt->Step();
        if (config_.divergence_guard) {
          if (!AllFinite(value_params)) {
            nn::RestoreParameters(value_good, value_params);
            ++iter_anomalies_;
            continue;
          }
          value_good = nn::SnapshotParameters(value_params);
        }
      }
    }

    // Line 20: update the overall value network V_all on r_all.
    if (config_.use_copo) {
      const std::vector<float> v_all = value_all_->Values(buffer_.states);
      const std::vector<float> v_all_next =
          value_all_->Values(buffer_.next_states);
      AdvantageResult adv_all = StreamAdvantages(
          buffer_.reward_all, v_all, v_all_next, buffer_.done, config_, false);
      for (const std::vector<int>& batch :
           MakeMinibatches(n, config_.minibatch, rng_)) {
        nn::Tensor s_b = buffer_.StateBatch(batch);
        nn::Tensor target(static_cast<int>(batch.size()), 1);
        for (size_t i = 0; i < batch.size(); ++i) {
          target(static_cast<int>(i), 0) = adv_all.returns[batch[i]];
        }
        value_all_opt_->ZeroGrad();
        nn::Variable all_loss = nn::MseLoss(value_all_->Forward(s_b), target);
        all_loss.Backward();
        if (config_.divergence_guard &&
            !std::isfinite(all_loss.value()(0, 0))) {
          ++iter_anomalies_;
          continue;  // Skip the poisoned minibatch; no step was taken.
        }
        value_all_opt_->Step();
      }
    }
  }
  return {grad_norm_count > 0
              ? static_cast<float>(grad_norm_sum / grad_norm_count)
              : 0.0f,
          value_loss_count > 0
              ? static_cast<float>(value_loss_sum / value_loss_count)
              : 0.0f};
}

void HiMadrlTrainer::LcfUpdate() {
  if (!config_.use_copo) return;
  const int num_agents = env_.num_agents();
  const size_t n = buffer_.size();

  // Overall advantage A_all from V_all (Eqn. 31), shared by all agents.
  const std::vector<float> v_all = value_all_->Values(buffer_.states);
  const std::vector<float> v_all_next =
      value_all_->Values(buffer_.next_states);
  AdvantageResult adv_all = StreamAdvantages(
      buffer_.reward_all, v_all, v_all_next, buffer_.done, config_, true);

  // Input caches are policy-independent; build them once.
  std::vector<std::vector<std::vector<float>>> all_actor_inputs(num_agents);
  std::vector<std::vector<std::vector<float>>> all_next_actor_inputs(
      num_agents);
  std::vector<std::vector<std::vector<float>>> all_critic_inputs(num_agents);
  std::vector<std::vector<std::vector<float>>> all_next_critic_inputs(
      num_agents);
  for (int k = 0; k < num_agents; ++k) {
    const AgentRollout& r = buffer_.agents[k];
    all_actor_inputs[k].reserve(n);
    for (size_t i = 0; i < n; ++i) {
      all_actor_inputs[k].push_back(ActorInput(k, r.obs[i]));
      all_next_actor_inputs[k].push_back(ActorInput(k, r.next_obs[i]));
      all_critic_inputs[k].push_back(
          CriticInput(k, r.obs[i], buffer_.states[i]));
      all_next_critic_inputs[k].push_back(
          CriticInput(k, r.next_obs[i], buffer_.next_states[i]));
    }
  }

  for (int m = 0; m < config_.lcf_epochs; ++m) {
    for (int k = 0; k < num_agents; ++k) {
      AgentNets& nets = Nets(k);
      AgentRollout& r = buffer_.agents[k];

      // Advantage streams with current critics (for dA_CO/d(phi,chi)).
      const auto& actor_inputs = all_actor_inputs[k];
      const auto& next_actor_inputs = all_next_actor_inputs[k];
      const auto& critic_inputs = all_critic_inputs[k];
      const auto& next_critic_inputs = all_next_critic_inputs[k];
      const std::vector<float> v = nets.value->Values(critic_inputs);
      const std::vector<float> vn = nets.value->Values(next_critic_inputs);
      AdvantageResult adv_k =
          StreamAdvantages(r.reward, v, vn, r.done, config_, true);
      const std::vector<float> vhe = nets.value_he->Values(actor_inputs);
      const std::vector<float> vhe_n =
          nets.value_he->Values(next_actor_inputs);
      AdvantageResult adv_he =
          StreamAdvantages(r.reward_he, vhe, vhe_n, r.done, config_, true);
      const std::vector<float> vho = nets.value_ho->Values(actor_inputs);
      const std::vector<float> vho_n =
          nets.value_ho->Values(next_actor_inputs);
      AdvantageResult adv_ho =
          StreamAdvantages(r.reward_ho, vho, vho_n, r.done, config_, true);

      for (const std::vector<int>& batch :
           MakeMinibatches(n, config_.minibatch, rng_)) {
        nn::Tensor obs_b = PackBatch(actor_inputs, batch);
        nn::Tensor act_b = r.ActionBatch(batch);
        std::vector<float> logp_old_b(batch.size()), adv_all_b(batch.size());
        nn::Tensor w_phi(static_cast<int>(batch.size()), 1);
        nn::Tensor w_chi(static_cast<int>(batch.size()), 1);
        for (size_t i = 0; i < batch.size(); ++i) {
          const int idx = batch[i];
          logp_old_b[i] = r.logp_old[idx];
          adv_all_b[i] = adv_all.advantages[idx];
          if (config_.hetero_copo) {
            w_phi(static_cast<int>(i), 0) = static_cast<float>(
                CoopAdvantageDPhi(adv_k.advantages[idx],
                                  adv_he.advantages[idx],
                                  adv_ho.advantages[idx], lcfs_[k]));
            w_chi(static_cast<int>(i), 0) = static_cast<float>(
                CoopAdvantageDChi(adv_k.advantages[idx],
                                  adv_he.advantages[idx],
                                  adv_ho.advantages[idx], lcfs_[k]));
          } else {
            w_phi(static_cast<int>(i), 0) =
                static_cast<float>(CoopAdvantagePlainDPhi(
                    adv_k.advantages[idx], adv_he.advantages[idx], lcfs_[k]));
            w_chi(static_cast<int>(i), 0) = 0.0f;
          }
        }

        // First factor of Eqn. (30): grad of J_all w.r.t. theta_new
        // (Eqn. 31) via the clipped surrogate with A_all.
        nn::DiagGaussian dist_new = nets.actor->Dist(obs_b);
        nn::Variable j_all = PpoSurrogate(dist_new.LogProb(act_b),
                                          logp_old_b, adv_all_b,
                                          config_.clip);
        ZeroGrads(nets.actor->Parameters());
        j_all.Backward();
        const std::vector<nn::Tensor> g_all =
            SnapshotGrads(nets.actor->Parameters());

        // Second factor (Eqn. 32): alpha * E[grad_theta_old log pi *
        // dA_CO/dLCF], evaluated on the frozen behavior policy.
        auto lcf_grad = [&](const nn::Tensor& weights) {
          nn::DiagGaussian dist_old = nets.actor_old->Dist(obs_b);
          nn::Variable weighted =
              nn::Mean(nn::Mul(dist_old.LogProb(act_b),
                               nn::Variable::Constant(weights)));
          ZeroGrads(nets.actor_old->Parameters());
          weighted.Backward();
          return SnapshotGrads(nets.actor_old->Parameters());
        };
        const std::vector<nn::Tensor> g_phi = lcf_grad(w_phi);
        const double norm_all = GradNorm(g_all);
        const double norm_phi = GradNorm(g_phi);
        // Normalized meta-gradient (cosine form) for numerical robustness;
        // the sign and relative magnitude follow Eqn. (30).
        const double dot_phi =
            GradDot(g_all, g_phi) / (norm_all * norm_phi + 1e-12);
        double step_phi = config_.lcf_lr * dot_phi * kRadToDeg *
                          static_cast<double>(config_.actor_lr);
        step_phi = std::clamp(step_phi,
                              -static_cast<double>(config_.max_lcf_step_deg),
                              static_cast<double>(config_.max_lcf_step_deg));
        if (config_.divergence_guard && !std::isfinite(step_phi)) {
          ++iter_anomalies_;
        } else {
          lcfs_[k].phi_deg += step_phi;
        }
        if (config_.hetero_copo) {
          const std::vector<nn::Tensor> g_chi = lcf_grad(w_chi);
          const double norm_chi = GradNorm(g_chi);
          const double dot_chi =
              GradDot(g_all, g_chi) / (norm_all * norm_chi + 1e-12);
          double step_chi = config_.lcf_lr * dot_chi * kRadToDeg *
                            static_cast<double>(config_.actor_lr);
          step_chi = std::clamp(
              step_chi, -static_cast<double>(config_.max_lcf_step_deg),
              static_cast<double>(config_.max_lcf_step_deg));
          if (config_.divergence_guard && !std::isfinite(step_chi)) {
            ++iter_anomalies_;
          } else {
            lcfs_[k].chi_deg += step_chi;
          }
        }
        lcfs_[k].ClampToRange();
      }
    }
  }
}

void HiMadrlTrainer::OptimizeOnCurrentBuffer() {
  UpdateEoiAndRewards();
  SnapshotOldPolicies();
  PolicyUpdate();
  LcfUpdate();
}

IterationStats HiMadrlTrainer::TrainIteration() {
  IterationStats stats;
  stats.iteration = iteration_;

  if (config_.oracle_check_every > 0 &&
      iteration_ % config_.oracle_check_every == 0) {
    RunOracleChecks();
  }

  iter_anomalies_ = 0;
  CollectRollouts();
  stats.eoi_loss = UpdateEoiAndRewards();
  SnapshotOldPolicies();
  const auto [grad_norm, value_loss] = PolicyUpdate();
  stats.actor_grad_norm = grad_norm;
  stats.value_loss = value_loss;
  LcfUpdate();

  stats.anomalies = iter_anomalies_;
  anomaly_streak_ = iter_anomalies_ > 0 ? anomaly_streak_ + 1 : 0;
  stats.lr_backoff = MaybeBackoffLearningRates();
  if (stats.anomalies > 0) {
    AGSC_LOG(kWarning) << "iter " << iteration_ << ": divergence guard "
                       << "caught " << stats.anomalies
                       << " non-finite update(s); rolled back and skipped "
                       << "the poisoned minibatches (streak="
                       << anomaly_streak_ << ")";
  }

  stats.rollout_metrics = env::Metrics::Average(rollout_metrics_);
  double ext_sum = 0.0, int_sum = 0.0;
  long count = 0;
  for (const AgentRollout& r : buffer_.agents) {
    for (size_t i = 0; i < r.size(); ++i) {
      ext_sum += r.reward_ext[i];
      int_sum += r.reward_int[i];
      ++count;
    }
  }
  stats.mean_reward_ext =
      count > 0 ? static_cast<float>(ext_sum / count) : 0.0f;
  stats.mean_reward_int =
      count > 0 ? static_cast<float>(int_sum / count) : 0.0f;
  stats.total_env_steps = total_env_steps_;
  stats.env_oracle_fallback = env_fallback_;
  stats.nn_oracle_fallback = nn_fallback_;
  stats.channel_oracle_fallback = channel_fallback_;

  if (config_.verbose) {
    AGSC_LOG(kInfo) << "iter " << iteration_ << " lambda="
                    << stats.rollout_metrics.efficiency
                    << " r_ext=" << stats.mean_reward_ext
                    << " grad=" << stats.actor_grad_norm;
  }
  ++iteration_;
  return stats;
}

bool HiMadrlTrainer::MaybeBackoffLearningRates() {
  if (!config_.divergence_guard || config_.anomaly_backoff_after <= 0 ||
      anomaly_streak_ < config_.anomaly_backoff_after) {
    return false;
  }
  if (config_.max_lr_backoffs > 0 &&
      lr_backoff_count_ >= config_.max_lr_backoffs) {
    throw TrainingDiverged(
        "divergence guard: updates still non-finite after " +
        std::to_string(lr_backoff_count_) +
        " learning-rate backoff(s); giving up at iteration " +
        std::to_string(iteration_));
  }
  ++lr_backoff_count_;
  const float factor = config_.lr_backoff_factor;
  config_.actor_lr *= factor;
  config_.critic_lr *= factor;
  for (AgentNets& n : nets_) {
    n.actor_opt->set_lr(n.actor_opt->lr() * factor);
    n.value_opt->set_lr(n.value_opt->lr() * factor);
  }
  if (value_all_opt_) {
    value_all_opt_->set_lr(value_all_opt_->lr() * factor);
  }
  anomaly_streak_ = 0;
  AGSC_LOG(kWarning) << "divergence guard: " << config_.anomaly_backoff_after
                     << " consecutive anomalous iterations; halving learning "
                     << "rates (actor_lr=" << config_.actor_lr
                     << ", critic_lr=" << config_.critic_lr << ")";
  return true;
}

void HiMadrlTrainer::RunOracleChecks() {
  if (!env_fallback_) {
    const OracleCheckResult check =
        EnvSelfCheck(env_, config_.oracle_check_steps);
    if (!check.ok) {
      env_fallback_ = true;
      AGSC_LOG(kError) << "oracle guard: spatial-index env disagrees with "
                       << "the naive oracle (" << check.detail
                       << "); permanently falling back to the naive "
                       << "linear-scan path";
    }
  }
  if (!channel_fallback_) {
    const OracleCheckResult check =
        ChannelSelfCheck(env_, config_.oracle_check_steps);
    if (!check.ok) {
      channel_fallback_ = true;
      AGSC_LOG(kError) << "oracle guard: batched channel kernels disagree "
                       << "with the scalar ChannelModel (" << check.detail
                       << "); permanently falling back to the scalar "
                       << "per-link path";
    }
  }
  if (!nn_fallback_) {
    const OracleCheckResult check = NnKernelSelfCheck();
    if (!check.ok) {
      nn_fallback_ = true;
      AGSC_LOG(kError) << "oracle guard: blocked GEMM kernels disagree with "
                       << "the naive reference (" << check.detail
                       << "); permanently falling back to the naive kernels";
    }
  }
  ApplyOracleFallbacks();
}

void HiMadrlTrainer::ApplyOracleFallbacks() {
  if (env_fallback_) {
    env_.DisableSpatialIndex();
    if (sampler_) {
      for (int w = 1; w < sampler_->num_workers(); ++w) {
        sampler_->worker_env(w).DisableSpatialIndex();
      }
    }
    // Subprocess replicas: sticky flag, carried to every worker by its
    // next episode-prefix frame (and to respawned incarnations).
    if (proc_sampler_) proc_sampler_->DisableSpatialIndex();
  }
  if (channel_fallback_) {
    env_.DisableChannelBatch();
    if (sampler_) {
      for (int w = 1; w < sampler_->num_workers(); ++w) {
        sampler_->worker_env(w).DisableChannelBatch();
      }
    }
    if (proc_sampler_) proc_sampler_->DisableChannelBatch();
  }
  if (nn_fallback_ && nn::GetKernelConfig().gemm != nn::GemmKernel::kNaive) {
    nn::KernelConfig kernel_config = nn::GetKernelConfig();
    kernel_config.gemm = nn::GemmKernel::kNaive;
    nn::SetKernelConfig(kernel_config);
  }
}

std::vector<IterationStats> HiMadrlTrainer::Train(int iterations) {
  const int total = iterations >= 0 ? iterations : config_.iterations;
  const bool auto_checkpoint =
      !config_.checkpoint_dir.empty() && config_.checkpoint_every > 0;
  std::vector<IterationStats> all;
  all.reserve(total);
  try {
    for (int i = 0; i < total; ++i) {
      if (config_.stop_check && config_.stop_check()) {
        throw util::InterruptedError(
            "stop requested at iteration boundary " +
            std::to_string(iteration_));
      }
      all.push_back(TrainIteration());
      stats_history_.push_back(all.back());
      if (auto_checkpoint && (iteration_ % config_.checkpoint_every == 0 ||
                              i + 1 == total)) {
        WriteAutoCheckpoint();
      }
    }
  } catch (const util::InterruptedError&) {
    // Clean cooperative stop: persist where we got to, then let the caller
    // decide (the CLI maps this to the signal-stop exit code).
    FlushFinalCheckpoint();
    throw;
  } catch (const TrainingDiverged&) {
    // The flushed state is the last completed iteration — the run can be
    // resumed with different hyperparameters from there.
    FlushFinalCheckpoint();
    throw;
  } catch (const ProcWorkerError&) {
    // The worker fleet is broken but the trainer's own state sits at a
    // consistent boundary (the failed collect's partial buffers were
    // discarded with the throw), so the run is resumable.
    FlushFinalCheckpoint();
    throw;
  }
  // Deliberately NOT flushed on util::WatchdogTimeoutError: a hung worker
  // may still be mutating environment state concurrently, so a checkpoint
  // written here could be torn. The watchdog path is fail-fast.
  return all;
}

void HiMadrlTrainer::FlushFinalCheckpoint() {
  if (config_.checkpoint_dir.empty()) return;
  // Don't overwrite a clean iteration-boundary checkpoint with one carrying
  // identical counters: if the current iteration already has a file on
  // disk, keep it.
  if (last_checkpoint_iter_ == iteration_) return;
  WriteAutoCheckpoint();
}

std::vector<IterationStats> HiMadrlTrainer::TrainTo(int total_iterations) {
  return Train(std::max(0, total_iterations - iteration_));
}

env::UvAction HiMadrlTrainer::Act(const env::ScEnv& env, int k,
                                  const std::vector<float>& obs,
                                  util::Rng& rng, bool deterministic) {
  (void)env;
  const std::vector<float> action =
      Nets(k).actor->Act(ActorInput(k, obs), rng, deterministic, nullptr);
  return {action[0], action[1]};
}

namespace {

/// All persistent parameters in a stable order, with the LCF angles packed
/// into one trailing Kx2 tensor (phi, chi rows).
std::vector<nn::Variable> CheckpointVars(
    const std::vector<nn::Variable>& net_params,
    const std::vector<Lcf>& lcfs) {
  std::vector<nn::Variable> vars = net_params;
  nn::Tensor lcf_tensor(static_cast<int>(lcfs.size()), 2);
  for (size_t k = 0; k < lcfs.size(); ++k) {
    lcf_tensor(static_cast<int>(k), 0) = static_cast<float>(lcfs[k].phi_deg);
    lcf_tensor(static_cast<int>(k), 1) = static_cast<float>(lcfs[k].chi_deg);
  }
  vars.push_back(nn::Variable::Parameter(std::move(lcf_tensor)));
  return vars;
}

}  // namespace

std::vector<nn::Variable> HiMadrlTrainer::GatherNetParameters() const {
  std::vector<nn::Variable> params;
  for (const AgentNets& n : nets_) {
    for (const nn::Variable& p : n.actor->Parameters()) params.push_back(p);
    for (const nn::Variable& p : n.value->Parameters()) params.push_back(p);
    if (n.value_he) {
      for (const nn::Variable& p : n.value_he->Parameters()) {
        params.push_back(p);
      }
      for (const nn::Variable& p : n.value_ho->Parameters()) {
        params.push_back(p);
      }
    }
  }
  if (value_all_) {
    for (const nn::Variable& p : value_all_->Parameters()) {
      params.push_back(p);
    }
  }
  if (eoi_) {
    for (const nn::Variable& p : eoi_->net().Parameters()) {
      params.push_back(p);
    }
  }
  return params;
}

std::vector<nn::Adam*> HiMadrlTrainer::GatherOptimizers() {
  std::vector<nn::Adam*> opts;
  for (AgentNets& n : nets_) {
    opts.push_back(n.actor_opt.get());
    opts.push_back(n.value_opt.get());
  }
  if (value_all_opt_) opts.push_back(value_all_opt_.get());
  if (eoi_) opts.push_back(&eoi_->optimizer());
  return opts;
}

uint64_t HiMadrlTrainer::ArchitectureFingerprint() const {
  // FNV-1a over every field that determines network shapes or the
  // checkpoint layout. Checkpoints from a differently-shaped run are
  // rejected loudly instead of being poured into mismatched tensors.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFFu;
      h *= 1099511628211ULL;
    }
  };
  mix(static_cast<uint64_t>(env_.obs_dim()));
  mix(static_cast<uint64_t>(env_.state_dim()));
  mix(static_cast<uint64_t>(env_.num_agents()));
  mix(static_cast<uint64_t>(env_.num_uavs()));
  mix(config_.base == BaseAlgo::kMappo ? 1 : 0);
  mix(config_.share_params ? 1 : 0);
  mix(config_.centralized_critic ? 1 : 0);
  mix(config_.use_eoi ? 1 : 0);
  mix(config_.use_copo ? 1 : 0);
  mix(config_.hetero_copo ? 1 : 0);
  for (int width : config_.net.hidden) mix(static_cast<uint64_t>(width));
  if (config_.use_eoi) {
    for (int width : config_.eoi.hidden) mix(static_cast<uint64_t>(width));
  }
  mix(static_cast<uint64_t>(TotalParameterCount()));
  return h;
}

namespace {
constexpr char kSecParams[] = "params";
constexpr char kSecLcf[] = "lcf";
constexpr char kSecAdam[] = "adam";
constexpr char kSecRng[] = "rng";
constexpr char kSecCounters[] = "counters";
// Extra RNG streams of rollout workers 1..W-1 when num_workers > 1:
// first word = num_workers, then per worker {sampling, env} states
// (kStateWords words each). Absent <=> the run had at most one worker.
constexpr char kSecVecRng[] = "vrng";
// counters section layout: iteration, total_env_steps, anomaly_streak,
// actor_lr bits, critic_lr bits. Files written since the supervisor layer
// carry a sixth word: bit 0 = env oracle fallback, bit 1 = NN kernel
// oracle fallback, bit 2 = batched-channel oracle fallback, bits 8+ =
// learning-rate backoff count. Older 5-word files load fine (no fallback,
// zero backoffs).
constexpr size_t kCounterWords = 5;
constexpr uint64_t kFallbackEnvBit = 1;
constexpr uint64_t kFallbackNnBit = 2;
constexpr uint64_t kFallbackChannelBit = 4;
constexpr int kBackoffCountShift = 8;
}  // namespace

bool HiMadrlTrainer::SaveCheckpoint(const std::string& path) {
  nn::Checkpoint ckpt;
  ckpt.fingerprint = ArchitectureFingerprint();

  nn::CheckpointSection& params = ckpt.AddSection(kSecParams);
  params.tensors = nn::SnapshotParameters(GatherNetParameters());

  nn::CheckpointSection& lcf = ckpt.AddSection(kSecLcf);
  for (const Lcf& l : lcfs_) {
    lcf.words.push_back(DoubleBits(l.phi_deg));
    lcf.words.push_back(DoubleBits(l.chi_deg));
  }

  nn::CheckpointSection& adam = ckpt.AddSection(kSecAdam);
  for (nn::Adam* opt : GatherOptimizers()) {
    nn::Adam::State state = opt->ExportState();
    adam.words.push_back(static_cast<uint64_t>(state.step_count));
    adam.words.push_back(DoubleBits(static_cast<double>(state.lr)));
    for (nn::Tensor& t : state.m) adam.tensors.push_back(std::move(t));
    for (nn::Tensor& t : state.v) adam.tensors.push_back(std::move(t));
  }

  nn::CheckpointSection& rng = ckpt.AddSection(kSecRng);
  for (uint64_t w : rng_.SaveState()) rng.words.push_back(w);
  for (uint64_t w : env_.rng().SaveState()) rng.words.push_back(w);

  nn::CheckpointSection& counters = ckpt.AddSection(kSecCounters);
  counters.words = {static_cast<uint64_t>(iteration_),
                    static_cast<uint64_t>(total_env_steps_),
                    static_cast<uint64_t>(anomaly_streak_),
                    DoubleBits(static_cast<double>(config_.actor_lr)),
                    DoubleBits(static_cast<double>(config_.critic_lr)),
                    (env_fallback_ ? kFallbackEnvBit : 0) |
                        (nn_fallback_ ? kFallbackNnBit : 0) |
                        (channel_fallback_ ? kFallbackChannelBit : 0) |
                        (static_cast<uint64_t>(lr_backoff_count_)
                         << kBackoffCountShift)};

  if (SamplerWorkerCount() > 1) {
    nn::CheckpointSection& vrng = ckpt.AddSection(kSecVecRng);
    vrng.words.push_back(static_cast<uint64_t>(SamplerWorkerCount()));
    for (util::Rng* stream : SamplerSplitRngs()) {
      for (uint64_t w : stream->SaveState()) vrng.words.push_back(w);
    }
  }

  // Encode once, retry only the write: transient I/O failures (injected or
  // real) are absorbed with exponential backoff before giving up.
  return util::AtomicWriteFileRetry(path, nn::EncodeCheckpoint(ckpt),
                                    config_.io_retry);
}

bool HiMadrlTrainer::LoadCheckpoint(const std::string& path) {
  if (nn::ReadFileMagic(path) == "AGSCNN01") return LoadCheckpointV1(path);
  return LoadCheckpointV2(path);
}

bool HiMadrlTrainer::LoadCheckpointForInference(const std::string& path) {
  // v1 files already carry params + LCFs only.
  if (nn::ReadFileMagic(path) == "AGSCNN01") return LoadCheckpointV1(path);

  nn::Checkpoint ckpt;
  const nn::CheckpointError error = nn::LoadCheckpointFile(path, ckpt);
  if (error != nn::CheckpointError::kOk) {
    AGSC_LOG(kError) << "checkpoint " << path << ": "
                     << nn::CheckpointErrorString(error);
    return false;
  }
  if (ckpt.fingerprint != ArchitectureFingerprint()) {
    AGSC_LOG(kError) << "checkpoint " << path
                     << ": architecture fingerprint mismatch (file "
                     << ckpt.fingerprint << ", trainer "
                     << ArchitectureFingerprint() << ")";
    return false;
  }
  const nn::CheckpointSection* params_sec = ckpt.Find(kSecParams);
  const nn::CheckpointSection* lcf_sec = ckpt.Find(kSecLcf);
  if (!params_sec || !lcf_sec) {
    AGSC_LOG(kError) << "checkpoint " << path << ": missing section";
    return false;
  }
  // Validate before mutating so a malformed file leaves the trainer intact.
  std::vector<nn::Variable> net_params = GatherNetParameters();
  if (params_sec->tensors.size() != net_params.size()) {
    AGSC_LOG(kError) << "checkpoint " << path << ": parameter count "
                     << params_sec->tensors.size() << " != expected "
                     << net_params.size();
    return false;
  }
  for (size_t i = 0; i < net_params.size(); ++i) {
    const nn::Tensor& have = params_sec->tensors[i];
    const nn::Tensor& want = net_params[i].value();
    if (have.rows() != want.rows() || have.cols() != want.cols()) {
      AGSC_LOG(kError) << "checkpoint " << path << ": tensor " << i
                       << " shape " << have.ShapeString() << " != expected "
                       << want.ShapeString();
      return false;
    }
  }
  if (lcf_sec->words.size() != lcfs_.size() * 2) {
    AGSC_LOG(kError) << "checkpoint " << path << ": LCF count mismatch";
    return false;
  }
  // Commit. Optimizer/RNG/counter/vrng sections are deliberately ignored:
  // none of them affect a deterministic forward pass.
  nn::RestoreParameters(params_sec->tensors, net_params);
  for (size_t k = 0; k < lcfs_.size(); ++k) {
    lcfs_[k].phi_deg = BitsToDouble(lcf_sec->words[2 * k]);
    lcfs_[k].chi_deg = BitsToDouble(lcf_sec->words[2 * k + 1]);
  }
  SnapshotOldPolicies();
  return true;
}

bool HiMadrlTrainer::LoadCheckpointV1(const std::string& path) {
  // Legacy flat parameter files: network params + LCFs only (no optimizer,
  // RNG, or counter state — resume from these is *not* bit-exact).
  std::vector<nn::Variable> vars =
      CheckpointVars(GatherNetParameters(), lcfs_);
  // LoadParameters writes into the tensors referenced by `vars`; the net
  // parameters alias the live networks, the trailing tensor is a staging
  // buffer for the LCFs.
  if (!nn::LoadParameters(path, vars)) return false;
  const nn::Tensor& lcf_tensor = vars.back().value();
  for (size_t k = 0; k < lcfs_.size(); ++k) {
    lcfs_[k].phi_deg = lcf_tensor(static_cast<int>(k), 0);
    lcfs_[k].chi_deg = lcf_tensor(static_cast<int>(k), 1);
  }
  // Keep theta_old in sync so the next LCF update sees a consistent pair.
  SnapshotOldPolicies();
  return true;
}

bool HiMadrlTrainer::LoadCheckpointV2(const std::string& path) {
  nn::Checkpoint ckpt;
  const nn::CheckpointError error = nn::LoadCheckpointFile(path, ckpt);
  if (error != nn::CheckpointError::kOk) {
    AGSC_LOG(kError) << "checkpoint " << path << ": "
                     << nn::CheckpointErrorString(error);
    return false;
  }
  if (ckpt.fingerprint != ArchitectureFingerprint()) {
    AGSC_LOG(kError) << "checkpoint " << path
                     << ": architecture fingerprint mismatch (file "
                     << ckpt.fingerprint << ", trainer "
                     << ArchitectureFingerprint()
                     << "); the env dims or TrainConfig differ from the run "
                     << "that saved this checkpoint";
    return false;
  }
  const nn::CheckpointSection* params_sec = ckpt.Find(kSecParams);
  const nn::CheckpointSection* lcf_sec = ckpt.Find(kSecLcf);
  const nn::CheckpointSection* adam_sec = ckpt.Find(kSecAdam);
  const nn::CheckpointSection* rng_sec = ckpt.Find(kSecRng);
  const nn::CheckpointSection* counters_sec = ckpt.Find(kSecCounters);
  if (!params_sec || !lcf_sec || !adam_sec || !rng_sec || !counters_sec) {
    AGSC_LOG(kError) << "checkpoint " << path << ": missing section";
    return false;
  }

  // Validate every section against the live architecture BEFORE mutating
  // anything, so a malformed checkpoint leaves the trainer untouched.
  std::vector<nn::Variable> net_params = GatherNetParameters();
  if (params_sec->tensors.size() != net_params.size()) {
    AGSC_LOG(kError) << "checkpoint " << path << ": parameter count "
                     << params_sec->tensors.size() << " != expected "
                     << net_params.size();
    return false;
  }
  for (size_t i = 0; i < net_params.size(); ++i) {
    const nn::Tensor& have = params_sec->tensors[i];
    const nn::Tensor& want = net_params[i].value();
    if (have.rows() != want.rows() || have.cols() != want.cols()) {
      AGSC_LOG(kError) << "checkpoint " << path << ": tensor " << i
                       << " shape " << have.ShapeString() << " != expected "
                       << want.ShapeString();
      return false;
    }
  }
  if (lcf_sec->words.size() != lcfs_.size() * 2) {
    AGSC_LOG(kError) << "checkpoint " << path << ": LCF count mismatch";
    return false;
  }
  std::vector<nn::Adam*> opts = GatherOptimizers();
  if (adam_sec->words.size() != opts.size() * 2) {
    AGSC_LOG(kError) << "checkpoint " << path << ": optimizer count "
                     << adam_sec->words.size() / 2 << " != expected "
                     << opts.size();
    return false;
  }
  std::vector<nn::Adam::State> states(opts.size());
  size_t cursor = 0;
  for (size_t i = 0; i < opts.size(); ++i) {
    const std::vector<nn::Variable>& opt_params = opts[i]->params();
    const size_t count = opt_params.size();
    if (adam_sec->tensors.size() < cursor + 2 * count) {
      AGSC_LOG(kError) << "checkpoint " << path
                       << ": truncated optimizer state";
      return false;
    }
    nn::Adam::State& state = states[i];
    state.step_count = static_cast<long>(adam_sec->words[2 * i]);
    state.lr = static_cast<float>(BitsToDouble(adam_sec->words[2 * i + 1]));
    state.m.assign(adam_sec->tensors.begin() + cursor,
                   adam_sec->tensors.begin() + cursor + count);
    cursor += count;
    state.v.assign(adam_sec->tensors.begin() + cursor,
                   adam_sec->tensors.begin() + cursor + count);
    cursor += count;
    for (size_t j = 0; j < count; ++j) {
      const nn::Tensor& want = opt_params[j].value();
      if (state.m[j].rows() != want.rows() ||
          state.m[j].cols() != want.cols() ||
          state.v[j].rows() != want.rows() ||
          state.v[j].cols() != want.cols()) {
        AGSC_LOG(kError) << "checkpoint " << path
                         << ": optimizer moment shape mismatch";
        return false;
      }
    }
  }
  if (cursor != adam_sec->tensors.size()) {
    AGSC_LOG(kError) << "checkpoint " << path
                     << ": trailing optimizer tensors";
    return false;
  }
  if (rng_sec->words.size() != 2 * util::Rng::kStateWords ||
      counters_sec->words.size() < kCounterWords) {
    AGSC_LOG(kError) << "checkpoint " << path << ": bad RNG/counter state";
    return false;
  }
  // Worker RNG streams: a checkpoint is only bit-exact to resume with the
  // same num_workers, so a mismatch is rejected loudly. Files without a
  // vrng section come from single-worker (or legacy-sampler) runs.
  const nn::CheckpointSection* vrng_sec = ckpt.Find(kSecVecRng);
  const uint64_t my_workers = static_cast<uint64_t>(SamplerWorkerCount());
  const uint64_t file_workers =
      vrng_sec && !vrng_sec->words.empty() ? vrng_sec->words[0] : 1;
  if (file_workers != my_workers) {
    AGSC_LOG(kError) << "checkpoint " << path << ": saved with num_workers="
                     << file_workers << " but this trainer has num_workers="
                     << my_workers
                     << "; resume is only bit-exact with a matching worker "
                     << "count";
    return false;
  }
  if (vrng_sec &&
      vrng_sec->words.size() !=
          1 + 2 * util::Rng::kStateWords * (file_workers - 1)) {
    AGSC_LOG(kError) << "checkpoint " << path << ": bad worker RNG state";
    return false;
  }

  // Commit: everything validated, now restore all state atomically.
  nn::RestoreParameters(params_sec->tensors, net_params);
  for (size_t k = 0; k < lcfs_.size(); ++k) {
    lcfs_[k].phi_deg = BitsToDouble(lcf_sec->words[2 * k]);
    lcfs_[k].chi_deg = BitsToDouble(lcf_sec->words[2 * k + 1]);
  }
  for (size_t i = 0; i < opts.size(); ++i) {
    opts[i]->ImportState(states[i]);
  }
  std::array<uint64_t, util::Rng::kStateWords> rng_state{};
  std::copy_n(rng_sec->words.begin(), util::Rng::kStateWords,
              rng_state.begin());
  rng_.LoadState(rng_state);
  std::copy_n(rng_sec->words.begin() + util::Rng::kStateWords,
              util::Rng::kStateWords, rng_state.begin());
  env_.rng().LoadState(rng_state);
  if (vrng_sec != nullptr) {
    const std::vector<util::Rng*> streams = SamplerSplitRngs();
    for (size_t i = 0; i < streams.size(); ++i) {
      std::copy_n(vrng_sec->words.begin() + 1 + i * util::Rng::kStateWords,
                  util::Rng::kStateWords, rng_state.begin());
      streams[i]->LoadState(rng_state);
    }
  }
  iteration_ = static_cast<int>(counters_sec->words[0]);
  total_env_steps_ = static_cast<long>(counters_sec->words[1]);
  anomaly_streak_ = static_cast<int>(counters_sec->words[2]);
  config_.actor_lr = static_cast<float>(BitsToDouble(counters_sec->words[3]));
  config_.critic_lr =
      static_cast<float>(BitsToDouble(counters_sec->words[4]));
  if (counters_sec->words.size() > kCounterWords) {
    // Supervisor word: oracle-fallback flags + LR backoff count. A run
    // downgraded to a reference path stays downgraded across resume (the
    // optimized path already proved untrustworthy on this machine).
    const uint64_t flags = counters_sec->words[kCounterWords];
    env_fallback_ = (flags & kFallbackEnvBit) != 0;
    nn_fallback_ = (flags & kFallbackNnBit) != 0;
    channel_fallback_ = (flags & kFallbackChannelBit) != 0;
    lr_backoff_count_ = static_cast<int>(flags >> kBackoffCountShift);
    if (env_fallback_ || nn_fallback_ || channel_fallback_) {
      AGSC_LOG(kWarning) << "checkpoint " << path
                         << ": restoring oracle fallback(s) (env="
                         << env_fallback_ << ", nn=" << nn_fallback_
                         << ", channel=" << channel_fallback_ << ")";
      ApplyOracleFallbacks();
    }
  } else {
    env_fallback_ = false;
    nn_fallback_ = false;
    channel_fallback_ = false;
    lr_backoff_count_ = 0;
  }
  // Keep theta_old in sync so the next LCF update sees a consistent pair.
  SnapshotOldPolicies();
  return true;
}

bool HiMadrlTrainer::LoadLatestCheckpoint(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<std::string> candidates;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt_", 0) == 0 && name.size() > 5 &&
        name.ends_with(".agsc")) {
      candidates.push_back(entry.path().string());
    }
  }
  if (ec) {
    AGSC_LOG(kError) << "checkpoint dir " << dir << ": " << ec.message();
    return false;
  }
  // Newest first (zero-padded iteration numbers sort lexicographically).
  std::sort(candidates.rbegin(), candidates.rend());
  // Honor the `latest` pointer when it names an existing candidate.
  std::ifstream latest_in(fs::path(dir) / "latest");
  std::string latest_name;
  if (latest_in && std::getline(latest_in, latest_name)) {
    const std::string latest_path = (fs::path(dir) / latest_name).string();
    auto it = std::find(candidates.begin(), candidates.end(), latest_path);
    if (it != candidates.end()) std::rotate(candidates.begin(), it, it + 1);
  }
  for (const std::string& path : candidates) {
    if (LoadCheckpoint(path)) {
      AGSC_LOG(kInfo) << "resumed from checkpoint " << path << " (iteration "
                      << iteration_ << ")";
      return true;
    }
    AGSC_LOG(kWarning) << "checkpoint " << path
                       << " failed validation; falling back to an older one";
  }
  AGSC_LOG(kError) << "no loadable checkpoint in " << dir;
  return false;
}

void HiMadrlTrainer::WriteAutoCheckpoint() {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(config_.checkpoint_dir, ec);
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt_%06d.agsc", iteration_);
  const fs::path dir(config_.checkpoint_dir);
  const std::string path = (dir / name).string();
  if (!SaveCheckpoint(path)) {
    AGSC_LOG(kWarning) << "auto-checkpoint failed: " << path;
    return;
  }
  last_checkpoint_iter_ = iteration_;
  util::AtomicWriteFileRetry((dir / "latest").string(),
                             std::string(name) + "\n", config_.io_retry);
  // Keep-last-K retention over ckpt_*.agsc files.
  std::vector<fs::path> retained;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    const std::string fname = entry.path().filename().string();
    if (fname.rfind("ckpt_", 0) == 0 && fname.ends_with(".agsc")) {
      retained.push_back(entry.path());
    }
  }
  std::sort(retained.begin(), retained.end());
  const size_t keep = static_cast<size_t>(std::max(1, config_.checkpoint_keep));
  for (size_t i = 0; i + keep < retained.size(); ++i) {
    fs::remove(retained[i], ec);
  }
}

int HiMadrlTrainer::TotalParameterCount() const {
  int total = 0;
  for (const AgentNets& n : nets_) {
    total += n.actor->ParameterCount();
    total += n.value->ParameterCount();
    if (n.value_he) total += n.value_he->ParameterCount();
    if (n.value_ho) total += n.value_ho->ParameterCount();
  }
  if (value_all_) total += value_all_->ParameterCount();
  if (eoi_) total += eoi_->net().ParameterCount();
  return total;
}

int HiMadrlTrainer::ActorParameterBytes() const {
  int total = 0;
  for (const AgentNets& n : nets_) total += n.actor->ParameterCount();
  return total * static_cast<int>(sizeof(float));
}

}  // namespace agsc::core
