#include "core/hi_madrl.h"

#include <algorithm>
#include <cmath>

#include "core/ppo.h"
#include "nn/serialize.h"
#include "util/logging.h"

namespace agsc::core {

namespace {
constexpr double kRadToDeg = 180.0 / M_PI;
}  // namespace

HiMadrlTrainer::HiMadrlTrainer(env::ScEnv& env, const TrainConfig& config)
    : env_(env),
      config_(config),
      rng_(config.seed),
      buffer_(env.num_agents()) {
  const int num_agents = env_.num_agents();
  const int id_dim = config_.share_params ? num_agents : 0;
  actor_input_dim_ = env_.obs_dim() + id_dim;
  const bool state_critic =
      config_.base == BaseAlgo::kMappo || config_.centralized_critic;
  critic_input_dim_ = (state_critic ? env_.state_dim() : env_.obs_dim()) +
                      id_dim;

  const int net_count = config_.share_params ? 1 : num_agents;
  nets_.resize(net_count);
  for (int i = 0; i < net_count; ++i) {
    AgentNets& n = nets_[i];
    n.actor = std::make_unique<GaussianActor>(
        actor_input_dim_, env::ScEnv::kActionDim, config_.net, rng_);
    n.actor_old = std::make_unique<GaussianActor>(
        actor_input_dim_, env::ScEnv::kActionDim, config_.net, rng_);
    n.value = std::make_unique<ValueNet>(critic_input_dim_, config_.net, rng_);
    n.actor_opt = std::make_unique<nn::Adam>(n.actor->Parameters(),
                                             config_.actor_lr);
    std::vector<nn::Variable> value_params = n.value->Parameters();
    if (config_.use_copo) {
      // Neighborhood value networks take the local observation (Section
      // V-B), augmented with the one-hot id under SP like the actor.
      n.value_he =
          std::make_unique<ValueNet>(actor_input_dim_, config_.net, rng_);
      n.value_ho =
          std::make_unique<ValueNet>(actor_input_dim_, config_.net, rng_);
      for (nn::Variable& p : n.value_he->Parameters()) {
        value_params.push_back(p);
      }
      for (nn::Variable& p : n.value_ho->Parameters()) {
        value_params.push_back(p);
      }
    }
    n.value_opt =
        std::make_unique<nn::Adam>(std::move(value_params), config_.critic_lr);
  }
  if (config_.use_copo) {
    value_all_ =
        std::make_unique<ValueNet>(env_.state_dim(), config_.net, rng_);
    value_all_opt_ = std::make_unique<nn::Adam>(value_all_->Parameters(),
                                                config_.critic_lr);
  }
  if (config_.use_eoi) {
    // The classifier sees the *raw* observation (no id features, which
    // would make the identification task trivial).
    eoi_ = std::make_unique<EoiClassifier>(env_.obs_dim(), num_agents,
                                           config_.eoi, rng_);
  }
  lcfs_.assign(num_agents, Lcf{});  // phi = 0, chi = 45 (Line 3).
}

std::vector<float> HiMadrlTrainer::ActorInput(
    int k, const std::vector<float>& obs) const {
  if (!config_.share_params) return obs;
  std::vector<float> input = obs;
  for (int j = 0; j < env_.num_agents(); ++j) {
    input.push_back(j == k ? 1.0f : 0.0f);
  }
  return input;
}

std::vector<float> HiMadrlTrainer::CriticInput(
    int k, const std::vector<float>& obs,
    const std::vector<float>& state) const {
  const bool state_critic =
      config_.base == BaseAlgo::kMappo || config_.centralized_critic;
  std::vector<float> input = state_critic ? state : obs;
  if (config_.share_params) {
    for (int j = 0; j < env_.num_agents(); ++j) {
      input.push_back(j == k ? 1.0f : 0.0f);
    }
  }
  return input;
}

void HiMadrlTrainer::CollectRollouts() {
  buffer_.Clear();
  rollout_metrics_.clear();
  const int num_agents = env_.num_agents();
  for (int e = 0; e < config_.episodes_per_iteration; ++e) {
    env::StepResult step = env_.Reset();
    std::vector<std::vector<float>> obs = step.observations;
    std::vector<float> state = step.state;
    while (true) {
      std::vector<env::UvAction> actions(num_agents);
      std::vector<float> logps(num_agents);
      std::vector<std::vector<float>> raw_actions(num_agents);
      for (int k = 0; k < num_agents; ++k) {
        raw_actions[k] = Nets(k).actor->Act(ActorInput(k, obs[k]), rng_,
                                            /*deterministic=*/false,
                                            &logps[k]);
        actions[k] = {raw_actions[k][0], raw_actions[k][1]};
      }
      env::StepResult next = env_.Step(actions);
      for (int k = 0; k < num_agents; ++k) {
        AgentRollout& r = buffer_.agents[k];
        r.obs.push_back(obs[k]);
        r.next_obs.push_back(next.observations[k]);
        r.action_dir.push_back(raw_actions[k][0]);
        r.action_speed.push_back(raw_actions[k][1]);
        r.logp_old.push_back(logps[k]);
        r.reward_ext.push_back(static_cast<float>(next.rewards[k]));
        r.he_neighbors.push_back(env_.HeterogeneousNeighbors(k));
        r.ho_neighbors.push_back(env_.HomogeneousNeighbors(k));
        r.done.push_back(next.done ? 1 : 0);
      }
      buffer_.states.push_back(state);
      buffer_.next_states.push_back(next.state);
      buffer_.done.push_back(next.done ? 1 : 0);
      obs = next.observations;
      state = next.state;
      if (next.done) break;
    }
    rollout_metrics_.push_back(env_.EpisodeMetrics());
    total_env_steps_ +=
        static_cast<long>(env_.config().num_timeslots) * num_agents;
  }
}

float HiMadrlTrainer::CurrentOmegaIn() const {
  if (!config_.use_eoi) return 0.0f;
  if (config_.omega_in_final < 0.0f || config_.iterations <= 1) {
    return config_.omega_in;
  }
  const float progress = std::min(
      1.0f, static_cast<float>(iteration_) /
                static_cast<float>(config_.iterations - 1));
  return config_.omega_in +
         (config_.omega_in_final - config_.omega_in) * progress;
}

float HiMadrlTrainer::UpdateEoiAndRewards() {
  const int num_agents = env_.num_agents();
  const size_t n = buffer_.size();
  float eoi_loss = 0.0f;

  // Line 12: train the identity classifier on this iteration's buffer.
  if (config_.use_eoi) {
    std::vector<const std::vector<std::vector<float>>*> per_agent;
    per_agent.reserve(num_agents);
    for (int k = 0; k < num_agents; ++k) {
      per_agent.push_back(&buffer_.agents[k].obs);
    }
    eoi_loss = eoi_->Update(per_agent, rng_);
  }

  // Compound reward r^k = r_ext + omega_in * p_mu(k|o) (Eqn. 19, Line 16).
  const float omega_in = CurrentOmegaIn();
  for (int k = 0; k < num_agents; ++k) {
    AgentRollout& r = buffer_.agents[k];
    if (config_.use_eoi) {
      r.reward_int = eoi_->IntrinsicRewards(k, r.obs);
    } else {
      r.reward_int.assign(n, 0.0f);
    }
    r.reward.resize(n);
    for (size_t i = 0; i < n; ++i) {
      r.reward[i] = r.reward_ext[i] + omega_in * r.reward_int[i];
    }
  }

  // r_all (Eqn. 29) and the neighbor mean rewards (Eqn. 23).
  buffer_.reward_all.assign(n, 0.0f);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> rewards_at(num_agents);
    for (int k = 0; k < num_agents; ++k) {
      rewards_at[k] = buffer_.agents[k].reward[i];
      buffer_.reward_all[i] += buffer_.agents[k].reward[i];
    }
    for (int k = 0; k < num_agents; ++k) {
      AgentRollout& r = buffer_.agents[k];
      if (config_.hetero_copo) {
        r.reward_he.push_back(static_cast<float>(
            NeighborMeanReward(r.he_neighbors[i], rewards_at)));
        r.reward_ho.push_back(static_cast<float>(
            NeighborMeanReward(r.ho_neighbors[i], rewards_at)));
      } else {
        // Plain CoPO: one merged neighbor set (stored in the HE slot).
        std::vector<int> merged = r.he_neighbors[i];
        merged.insert(merged.end(), r.ho_neighbors[i].begin(),
                      r.ho_neighbors[i].end());
        std::sort(merged.begin(), merged.end());
        merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
        r.reward_he.push_back(
            static_cast<float>(NeighborMeanReward(merged, rewards_at)));
        r.reward_ho.push_back(0.0f);
      }
    }
  }
  return eoi_loss;
}

void HiMadrlTrainer::SnapshotOldPolicies() {
  for (AgentNets& n : nets_) {
    std::vector<nn::Variable> src = n.actor->Parameters();
    std::vector<nn::Variable> dst = n.actor_old->Parameters();
    nn::CopyParameters(src, dst);
  }
}

namespace {

/// Computes (normalized) one-step or GAE advantages for a reward stream.
AdvantageResult StreamAdvantages(const std::vector<float>& rewards,
                                 const std::vector<float>& values,
                                 const std::vector<float>& next_values,
                                 const std::vector<uint8_t>& dones,
                                 const TrainConfig& config, bool normalize) {
  AdvantageResult adv =
      config.gae_lambda < 0.0f
          ? OneStepAdvantages(rewards, values, next_values, dones,
                              config.gamma)
          : GaeAdvantages(rewards, values, next_values, dones, config.gamma,
                          config.gae_lambda);
  if (normalize) NormalizeInPlace(adv.advantages);
  return adv;
}

/// Elementwise dot product of two gradient snapshots.
double GradDot(const std::vector<nn::Tensor>& a,
               const std::vector<nn::Tensor>& b) {
  double dot = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    for (int j = 0; j < a[i].size(); ++j) {
      dot += static_cast<double>(a[i][j]) * b[i][j];
    }
  }
  return dot;
}

double GradNorm(const std::vector<nn::Tensor>& a) {
  double sq = 0.0;
  for (const nn::Tensor& t : a) {
    for (int j = 0; j < t.size(); ++j) {
      sq += static_cast<double>(t[j]) * t[j];
    }
  }
  return std::sqrt(sq);
}

std::vector<nn::Tensor> SnapshotGrads(std::vector<nn::Variable> params) {
  std::vector<nn::Tensor> out;
  out.reserve(params.size());
  for (nn::Variable& p : params) out.push_back(p.grad());
  return out;
}

void ZeroGrads(std::vector<nn::Variable> params) {
  for (nn::Variable& p : params) p.ZeroGrad();
}

}  // namespace

std::pair<float, float> HiMadrlTrainer::PolicyUpdate() {
  const int num_agents = env_.num_agents();
  const size_t n = buffer_.size();

  // Pre-build augmented input rows once per iteration.
  std::vector<std::vector<std::vector<float>>> actor_inputs(num_agents);
  std::vector<std::vector<std::vector<float>>> next_actor_inputs(num_agents);
  std::vector<std::vector<std::vector<float>>> critic_inputs(num_agents);
  std::vector<std::vector<std::vector<float>>> next_critic_inputs(num_agents);
  for (int k = 0; k < num_agents; ++k) {
    const AgentRollout& r = buffer_.agents[k];
    actor_inputs[k].reserve(n);
    for (size_t i = 0; i < n; ++i) {
      actor_inputs[k].push_back(ActorInput(k, r.obs[i]));
      next_actor_inputs[k].push_back(ActorInput(k, r.next_obs[i]));
      critic_inputs[k].push_back(
          CriticInput(k, r.obs[i], buffer_.states[i]));
      next_critic_inputs[k].push_back(
          CriticInput(k, r.next_obs[i], buffer_.next_states[i]));
    }
  }

  double grad_norm_sum = 0.0, value_loss_sum = 0.0;
  long grad_norm_count = 0, value_loss_count = 0;

  for (int epoch = 0; epoch < config_.policy_epochs; ++epoch) {
    for (int k = 0; k < num_agents; ++k) {
      AgentNets& nets = Nets(k);
      AgentRollout& r = buffer_.agents[k];

      // Value predictions (no grad) and advantage streams (Eqn. 24).
      const std::vector<float> v = nets.value->Values(critic_inputs[k]);
      const std::vector<float> vn =
          nets.value->Values(next_critic_inputs[k]);
      AdvantageResult adv_k =
          StreamAdvantages(r.reward, v, vn, r.done, config_, true);
      AdvantageResult adv_he, adv_ho;
      if (config_.use_copo) {
        const std::vector<float> vhe =
            nets.value_he->Values(actor_inputs[k]);
        const std::vector<float> vhe_n =
            nets.value_he->Values(next_actor_inputs[k]);
        adv_he = StreamAdvantages(r.reward_he, vhe, vhe_n, r.done, config_,
                                  true);
        const std::vector<float> vho =
            nets.value_ho->Values(actor_inputs[k]);
        const std::vector<float> vho_n =
            nets.value_ho->Values(next_actor_inputs[k]);
        adv_ho = StreamAdvantages(r.reward_ho, vho, vho_n, r.done, config_,
                                  true);
      }

      // Cooperation-aware advantage A_CO (Eqn. 27) or the base advantage.
      std::vector<float> a_co(n);
      for (size_t i = 0; i < n; ++i) {
        if (!config_.use_copo) {
          a_co[i] = adv_k.advantages[i];
        } else if (config_.hetero_copo) {
          a_co[i] = static_cast<float>(
              CoopAdvantage(adv_k.advantages[i], adv_he.advantages[i],
                            adv_ho.advantages[i], lcfs_[k]));
        } else {
          a_co[i] = static_cast<float>(CoopAdvantagePlain(
              adv_k.advantages[i], adv_he.advantages[i], lcfs_[k]));
        }
      }

      for (const std::vector<int>& batch :
           MakeMinibatches(n, config_.minibatch, rng_)) {
        // --- Actor: maximize J_CO (Eqn. 28) + entropy bonus. ---
        nn::Tensor obs_b = PackBatch(actor_inputs[k], batch);
        nn::Tensor act_b = r.ActionBatch(batch);
        std::vector<float> logp_old_b(batch.size()), a_co_b(batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
          logp_old_b[i] = r.logp_old[batch[i]];
          a_co_b[i] = a_co[batch[i]];
        }
        nn::DiagGaussian dist = nets.actor->Dist(obs_b);
        nn::Variable logp = dist.LogProb(act_b);
        nn::Variable surrogate =
            PpoSurrogate(logp, logp_old_b, a_co_b, config_.clip);
        nn::Variable actor_loss =
            nn::Sub(nn::Neg(surrogate),
                    nn::ScalarMul(dist.Entropy(), config_.entropy_coef));
        nets.actor_opt->ZeroGrad();
        actor_loss.Backward();
        std::vector<nn::Variable> actor_params = nets.actor->Parameters();
        grad_norm_sum +=
            nn::ClipGradNorm(actor_params, config_.max_grad_norm);
        ++grad_norm_count;
        nets.actor_opt->Step();

        // --- Critics: Eqn. (26) TD regression for V^k, V_HE, V_HO. ---
        auto value_target = [&](const AdvantageResult& adv) {
          nn::Tensor t(static_cast<int>(batch.size()), 1);
          for (size_t i = 0; i < batch.size(); ++i) {
            t(static_cast<int>(i), 0) = adv.returns[batch[i]];
          }
          return t;
        };
        nets.value_opt->ZeroGrad();
        nn::Tensor critic_b = PackBatch(critic_inputs[k], batch);
        nn::Variable v_loss =
            nn::MseLoss(nets.value->Forward(critic_b), value_target(adv_k));
        v_loss.Backward();
        value_loss_sum += v_loss.value()(0, 0);
        ++value_loss_count;
        if (config_.use_copo) {
          nn::MseLoss(nets.value_he->Forward(obs_b), value_target(adv_he))
              .Backward();
          nn::MseLoss(nets.value_ho->Forward(obs_b), value_target(adv_ho))
              .Backward();
        }
        nets.value_opt->Step();
      }
    }

    // Line 20: update the overall value network V_all on r_all.
    if (config_.use_copo) {
      const std::vector<float> v_all = value_all_->Values(buffer_.states);
      const std::vector<float> v_all_next =
          value_all_->Values(buffer_.next_states);
      AdvantageResult adv_all = StreamAdvantages(
          buffer_.reward_all, v_all, v_all_next, buffer_.done, config_, false);
      for (const std::vector<int>& batch :
           MakeMinibatches(n, config_.minibatch, rng_)) {
        nn::Tensor s_b = buffer_.StateBatch(batch);
        nn::Tensor target(static_cast<int>(batch.size()), 1);
        for (size_t i = 0; i < batch.size(); ++i) {
          target(static_cast<int>(i), 0) = adv_all.returns[batch[i]];
        }
        value_all_opt_->ZeroGrad();
        nn::MseLoss(value_all_->Forward(s_b), target).Backward();
        value_all_opt_->Step();
      }
    }
  }
  return {grad_norm_count > 0
              ? static_cast<float>(grad_norm_sum / grad_norm_count)
              : 0.0f,
          value_loss_count > 0
              ? static_cast<float>(value_loss_sum / value_loss_count)
              : 0.0f};
}

void HiMadrlTrainer::LcfUpdate() {
  if (!config_.use_copo) return;
  const int num_agents = env_.num_agents();
  const size_t n = buffer_.size();

  // Overall advantage A_all from V_all (Eqn. 31), shared by all agents.
  const std::vector<float> v_all = value_all_->Values(buffer_.states);
  const std::vector<float> v_all_next =
      value_all_->Values(buffer_.next_states);
  AdvantageResult adv_all = StreamAdvantages(
      buffer_.reward_all, v_all, v_all_next, buffer_.done, config_, true);

  // Input caches are policy-independent; build them once.
  std::vector<std::vector<std::vector<float>>> all_actor_inputs(num_agents);
  std::vector<std::vector<std::vector<float>>> all_next_actor_inputs(
      num_agents);
  std::vector<std::vector<std::vector<float>>> all_critic_inputs(num_agents);
  std::vector<std::vector<std::vector<float>>> all_next_critic_inputs(
      num_agents);
  for (int k = 0; k < num_agents; ++k) {
    const AgentRollout& r = buffer_.agents[k];
    all_actor_inputs[k].reserve(n);
    for (size_t i = 0; i < n; ++i) {
      all_actor_inputs[k].push_back(ActorInput(k, r.obs[i]));
      all_next_actor_inputs[k].push_back(ActorInput(k, r.next_obs[i]));
      all_critic_inputs[k].push_back(
          CriticInput(k, r.obs[i], buffer_.states[i]));
      all_next_critic_inputs[k].push_back(
          CriticInput(k, r.next_obs[i], buffer_.next_states[i]));
    }
  }

  for (int m = 0; m < config_.lcf_epochs; ++m) {
    for (int k = 0; k < num_agents; ++k) {
      AgentNets& nets = Nets(k);
      AgentRollout& r = buffer_.agents[k];

      // Advantage streams with current critics (for dA_CO/d(phi,chi)).
      const auto& actor_inputs = all_actor_inputs[k];
      const auto& next_actor_inputs = all_next_actor_inputs[k];
      const auto& critic_inputs = all_critic_inputs[k];
      const auto& next_critic_inputs = all_next_critic_inputs[k];
      const std::vector<float> v = nets.value->Values(critic_inputs);
      const std::vector<float> vn = nets.value->Values(next_critic_inputs);
      AdvantageResult adv_k =
          StreamAdvantages(r.reward, v, vn, r.done, config_, true);
      const std::vector<float> vhe = nets.value_he->Values(actor_inputs);
      const std::vector<float> vhe_n =
          nets.value_he->Values(next_actor_inputs);
      AdvantageResult adv_he =
          StreamAdvantages(r.reward_he, vhe, vhe_n, r.done, config_, true);
      const std::vector<float> vho = nets.value_ho->Values(actor_inputs);
      const std::vector<float> vho_n =
          nets.value_ho->Values(next_actor_inputs);
      AdvantageResult adv_ho =
          StreamAdvantages(r.reward_ho, vho, vho_n, r.done, config_, true);

      for (const std::vector<int>& batch :
           MakeMinibatches(n, config_.minibatch, rng_)) {
        nn::Tensor obs_b = PackBatch(actor_inputs, batch);
        nn::Tensor act_b = r.ActionBatch(batch);
        std::vector<float> logp_old_b(batch.size()), adv_all_b(batch.size());
        nn::Tensor w_phi(static_cast<int>(batch.size()), 1);
        nn::Tensor w_chi(static_cast<int>(batch.size()), 1);
        for (size_t i = 0; i < batch.size(); ++i) {
          const int idx = batch[i];
          logp_old_b[i] = r.logp_old[idx];
          adv_all_b[i] = adv_all.advantages[idx];
          if (config_.hetero_copo) {
            w_phi(static_cast<int>(i), 0) = static_cast<float>(
                CoopAdvantageDPhi(adv_k.advantages[idx],
                                  adv_he.advantages[idx],
                                  adv_ho.advantages[idx], lcfs_[k]));
            w_chi(static_cast<int>(i), 0) = static_cast<float>(
                CoopAdvantageDChi(adv_k.advantages[idx],
                                  adv_he.advantages[idx],
                                  adv_ho.advantages[idx], lcfs_[k]));
          } else {
            w_phi(static_cast<int>(i), 0) =
                static_cast<float>(CoopAdvantagePlainDPhi(
                    adv_k.advantages[idx], adv_he.advantages[idx], lcfs_[k]));
            w_chi(static_cast<int>(i), 0) = 0.0f;
          }
        }

        // First factor of Eqn. (30): grad of J_all w.r.t. theta_new
        // (Eqn. 31) via the clipped surrogate with A_all.
        nn::DiagGaussian dist_new = nets.actor->Dist(obs_b);
        nn::Variable j_all = PpoSurrogate(dist_new.LogProb(act_b),
                                          logp_old_b, adv_all_b,
                                          config_.clip);
        ZeroGrads(nets.actor->Parameters());
        j_all.Backward();
        const std::vector<nn::Tensor> g_all =
            SnapshotGrads(nets.actor->Parameters());

        // Second factor (Eqn. 32): alpha * E[grad_theta_old log pi *
        // dA_CO/dLCF], evaluated on the frozen behavior policy.
        auto lcf_grad = [&](const nn::Tensor& weights) {
          nn::DiagGaussian dist_old = nets.actor_old->Dist(obs_b);
          nn::Variable weighted =
              nn::Mean(nn::Mul(dist_old.LogProb(act_b),
                               nn::Variable::Constant(weights)));
          ZeroGrads(nets.actor_old->Parameters());
          weighted.Backward();
          return SnapshotGrads(nets.actor_old->Parameters());
        };
        const std::vector<nn::Tensor> g_phi = lcf_grad(w_phi);
        const double norm_all = GradNorm(g_all);
        const double norm_phi = GradNorm(g_phi);
        // Normalized meta-gradient (cosine form) for numerical robustness;
        // the sign and relative magnitude follow Eqn. (30).
        const double dot_phi =
            GradDot(g_all, g_phi) / (norm_all * norm_phi + 1e-12);
        double step_phi = config_.lcf_lr * dot_phi * kRadToDeg *
                          static_cast<double>(config_.actor_lr);
        step_phi = std::clamp(step_phi,
                              -static_cast<double>(config_.max_lcf_step_deg),
                              static_cast<double>(config_.max_lcf_step_deg));
        lcfs_[k].phi_deg += step_phi;
        if (config_.hetero_copo) {
          const std::vector<nn::Tensor> g_chi = lcf_grad(w_chi);
          const double norm_chi = GradNorm(g_chi);
          const double dot_chi =
              GradDot(g_all, g_chi) / (norm_all * norm_chi + 1e-12);
          double step_chi = config_.lcf_lr * dot_chi * kRadToDeg *
                            static_cast<double>(config_.actor_lr);
          step_chi = std::clamp(
              step_chi, -static_cast<double>(config_.max_lcf_step_deg),
              static_cast<double>(config_.max_lcf_step_deg));
          lcfs_[k].chi_deg += step_chi;
        }
        lcfs_[k].ClampToRange();
      }
    }
  }
}

IterationStats HiMadrlTrainer::TrainIteration() {
  IterationStats stats;
  stats.iteration = iteration_;

  CollectRollouts();
  stats.eoi_loss = UpdateEoiAndRewards();
  SnapshotOldPolicies();
  const auto [grad_norm, value_loss] = PolicyUpdate();
  stats.actor_grad_norm = grad_norm;
  stats.value_loss = value_loss;
  LcfUpdate();

  stats.rollout_metrics = env::Metrics::Average(rollout_metrics_);
  double ext_sum = 0.0, int_sum = 0.0;
  long count = 0;
  for (const AgentRollout& r : buffer_.agents) {
    for (size_t i = 0; i < r.size(); ++i) {
      ext_sum += r.reward_ext[i];
      int_sum += r.reward_int[i];
      ++count;
    }
  }
  stats.mean_reward_ext =
      count > 0 ? static_cast<float>(ext_sum / count) : 0.0f;
  stats.mean_reward_int =
      count > 0 ? static_cast<float>(int_sum / count) : 0.0f;
  stats.total_env_steps = total_env_steps_;

  if (config_.verbose) {
    AGSC_LOG(kInfo) << "iter " << iteration_ << " lambda="
                    << stats.rollout_metrics.efficiency
                    << " r_ext=" << stats.mean_reward_ext
                    << " grad=" << stats.actor_grad_norm;
  }
  ++iteration_;
  return stats;
}

std::vector<IterationStats> HiMadrlTrainer::Train(int iterations) {
  const int total = iterations >= 0 ? iterations : config_.iterations;
  std::vector<IterationStats> all;
  all.reserve(total);
  for (int i = 0; i < total; ++i) all.push_back(TrainIteration());
  return all;
}

env::UvAction HiMadrlTrainer::Act(const env::ScEnv& env, int k,
                                  const std::vector<float>& obs,
                                  util::Rng& rng, bool deterministic) {
  (void)env;
  const std::vector<float> action =
      Nets(k).actor->Act(ActorInput(k, obs), rng, deterministic, nullptr);
  return {action[0], action[1]};
}

namespace {

/// All persistent parameters in a stable order, with the LCF angles packed
/// into one trailing Kx2 tensor (phi, chi rows).
std::vector<nn::Variable> CheckpointVars(
    const std::vector<nn::Variable>& net_params,
    const std::vector<Lcf>& lcfs) {
  std::vector<nn::Variable> vars = net_params;
  nn::Tensor lcf_tensor(static_cast<int>(lcfs.size()), 2);
  for (size_t k = 0; k < lcfs.size(); ++k) {
    lcf_tensor(static_cast<int>(k), 0) = static_cast<float>(lcfs[k].phi_deg);
    lcf_tensor(static_cast<int>(k), 1) = static_cast<float>(lcfs[k].chi_deg);
  }
  vars.push_back(nn::Variable::Parameter(std::move(lcf_tensor)));
  return vars;
}

}  // namespace

bool HiMadrlTrainer::SaveCheckpoint(const std::string& path) const {
  std::vector<nn::Variable> params;
  for (const AgentNets& n : nets_) {
    for (const nn::Variable& p : n.actor->Parameters()) params.push_back(p);
    for (const nn::Variable& p : n.value->Parameters()) params.push_back(p);
    if (n.value_he) {
      for (const nn::Variable& p : n.value_he->Parameters()) {
        params.push_back(p);
      }
      for (const nn::Variable& p : n.value_ho->Parameters()) {
        params.push_back(p);
      }
    }
  }
  if (value_all_) {
    for (const nn::Variable& p : value_all_->Parameters()) {
      params.push_back(p);
    }
  }
  if (eoi_) {
    for (const nn::Variable& p : eoi_->net().Parameters()) {
      params.push_back(p);
    }
  }
  return nn::SaveParameters(path, CheckpointVars(params, lcfs_));
}

bool HiMadrlTrainer::LoadCheckpoint(const std::string& path) {
  std::vector<nn::Variable> params;
  for (AgentNets& n : nets_) {
    for (nn::Variable& p : n.actor->Parameters()) params.push_back(p);
    for (nn::Variable& p : n.value->Parameters()) params.push_back(p);
    if (n.value_he) {
      for (nn::Variable& p : n.value_he->Parameters()) params.push_back(p);
      for (nn::Variable& p : n.value_ho->Parameters()) params.push_back(p);
    }
  }
  if (value_all_) {
    for (nn::Variable& p : value_all_->Parameters()) params.push_back(p);
  }
  if (eoi_) {
    for (nn::Variable& p : eoi_->net().Parameters()) params.push_back(p);
  }
  std::vector<nn::Variable> vars = CheckpointVars(params, lcfs_);
  // LoadParameters writes into the tensors referenced by `vars`; the net
  // parameters alias the live networks, the trailing tensor is a staging
  // buffer for the LCFs.
  if (!nn::LoadParameters(path, vars)) return false;
  const nn::Tensor& lcf_tensor = vars.back().value();
  for (size_t k = 0; k < lcfs_.size(); ++k) {
    lcfs_[k].phi_deg = lcf_tensor(static_cast<int>(k), 0);
    lcfs_[k].chi_deg = lcf_tensor(static_cast<int>(k), 1);
  }
  // Keep theta_old in sync so the next LCF update sees a consistent pair.
  SnapshotOldPolicies();
  return true;
}

int HiMadrlTrainer::TotalParameterCount() const {
  int total = 0;
  for (const AgentNets& n : nets_) {
    total += n.actor->ParameterCount();
    total += n.value->ParameterCount();
    if (n.value_he) total += n.value_he->ParameterCount();
    if (n.value_ho) total += n.value_ho->ParameterCount();
  }
  if (value_all_) total += value_all_->ParameterCount();
  if (eoi_) total += eoi_->net().ParameterCount();
  return total;
}

int HiMadrlTrainer::ActorParameterBytes() const {
  int total = 0;
  for (const AgentNets& n : nets_) total += n.actor->ParameterCount();
  return total * static_cast<int>(sizeof(float));
}

}  // namespace agsc::core
