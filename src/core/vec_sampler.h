#ifndef AGSC_CORE_VEC_SAMPLER_H_
#define AGSC_CORE_VEC_SAMPLER_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/rollout.h"
#include "env/sc_env.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace agsc::core {

/// Deterministic vectorized rollout collector.
///
/// Runs `num_workers` independent `ScEnv` replicas in lock-step. Each
/// timeslot the per-agent actor forwards are batched ACROSS workers into a
/// single tensor call on the caller's thread (one `BatchActFn` invocation
/// per agent, rows in ascending worker order), then every worker's
/// environment step and buffer appends run on a thread pool. Determinism
/// contract:
///
///  * worker 0 aliases the primary environment and primary sampling RNG
///    passed at construction, so `num_workers == 1` reproduces the legacy
///    sequential sampler bit-for-bit (and adds no threads at all);
///  * workers 1..W-1 own environment replicas and private SplitMix64-derived
///    RNG streams (`Rng::Split`), and only ever touch worker-local state
///    inside pool tasks, so the merged result is a pure function of
///    (seed, num_workers) — bit-identical across runs and independent of
///    thread scheduling;
///  * per-worker buffers are merged in stable worker-index order.
///
/// Episodes are dealt round-robin: worker w runs global episodes
/// w, w+W, w+2W, ... so the active worker set in every round is a prefix of
/// the worker indices.
class VecSampler {
 public:
  /// Computes actions for agent `k` across workers in one batched call.
  /// `obs_rows[i]` is the i-th active worker's observation of agent k (rows
  /// in ascending worker order) and `rngs[i]` its private sampling stream;
  /// implementations must draw row i's sampling noise from `rngs[i]` only,
  /// in row order. Fills one (direction, speed) action and one
  /// log-probability per row.
  using BatchActFn = std::function<void(
      int k, const std::vector<const std::vector<float>*>& obs_rows,
      const std::vector<util::Rng*>& rngs,
      std::vector<std::array<float, 2>>& actions_out,
      std::vector<float>& logps_out)>;

  /// `primary_env` / `primary_rng` become worker 0's environment and
  /// sampling stream (held by reference). Workers 1..num_workers-1 get
  /// copies of `primary_env` reseeded from `Rng(seed).Split(...)`.
  VecSampler(env::ScEnv& primary_env, util::Rng& primary_rng, int num_workers,
             uint64_t seed);
  ~VecSampler();

  VecSampler(const VecSampler&) = delete;
  VecSampler& operator=(const VecSampler&) = delete;

  /// Collects `episodes` full episodes through `act`, appending the merged
  /// experience to `buffer` and one `Metrics` row per episode to `metrics`
  /// (both in stable worker-index order).
  ///
  /// Throws util::InterruptedError if the stop check fires at a timeslot
  /// boundary, and util::WatchdogTimeoutError (annotated with the stuck
  /// worker and timeslot) if a parallel step batch misses the step deadline.
  /// Partial experience from an interrupted call is discarded; the sampling
  /// RNG streams have advanced, so a resumed run is still deterministic but
  /// not bit-equal to an uninterrupted one.
  void Collect(int episodes, const BatchActFn& act, MultiAgentBuffer& buffer,
               std::vector<env::Metrics>& metrics);

  /// Optional cooperative stop: polled on the caller's thread at every
  /// timeslot boundary (never inside a pool task). When it returns true,
  /// Collect throws util::InterruptedError instead of starting more work.
  void set_stop_check(std::function<bool()> stop_check) {
    stop_check_ = std::move(stop_check);
  }

  /// Watchdog deadline for each parallel reset/step batch, in milliseconds
  /// (0 = no deadline). Only meaningful with num_workers > 1 — the inline
  /// single-worker pool runs tasks synchronously, so a deadline can never
  /// fire mid-task. A timeout is fail-fast: the hung task may still be
  /// running when Collect throws, so treat the sampler as unusable and
  /// flush + exit rather than retrying.
  void set_step_deadline_ms(long deadline_ms) {
    step_deadline_ms_ = deadline_ms;
  }

  int num_workers() const { return num_workers_; }

  /// The sampling RNG stream of worker `w` (worker 0 = the primary stream).
  util::Rng& sample_rng(int w);

  /// Worker `w`'s environment (worker 0 = the primary environment).
  env::ScEnv& worker_env(int w);

  /// The RNG streams owned by workers 1..W-1, in checkpoint order:
  /// [sample_1, env_1, sample_2, env_2, ...]. Worker 0's streams belong to
  /// the trainer/environment and are checkpointed there; these are the
  /// *extra* streams a checkpoint must capture for `--resume` to stay
  /// bit-exact when num_workers > 1.
  std::vector<util::Rng*> SplitRngs();

 private:
  env::ScEnv& primary_env_;
  util::Rng& primary_rng_;
  int num_workers_;
  std::vector<std::unique_ptr<env::ScEnv>> replica_envs_;  ///< Workers 1..W-1.
  std::vector<util::Rng> replica_rngs_;                    ///< Workers 1..W-1.
  std::function<bool()> stop_check_;
  long step_deadline_ms_ = 0;
  // Declared last so it is destroyed first: the destructor join waits for
  // any straggling (e.g. stalled) task before the envs it touches go away.
  util::ThreadPool pool_;
};

}  // namespace agsc::core

#endif  // AGSC_CORE_VEC_SAMPLER_H_
