#include "core/oracle_guard.h"

#include <array>
#include <sstream>
#include <vector>

#include "nn/tensor.h"
#include "util/rng.h"

namespace agsc::core {

namespace {

bool EventsEqual(const env::CollectionEvent& a, const env::CollectionEvent& b) {
  return a.subchannel == b.subchannel && a.uav == b.uav && a.ugv == b.ugv &&
         a.poi_uav == b.poi_uav && a.poi_ugv == b.poi_ugv &&
         a.collected_uav_gbit == b.collected_uav_gbit &&
         a.collected_ugv_gbit == b.collected_ugv_gbit &&
         a.loss_uav == b.loss_uav && a.loss_ugv == b.loss_ugv &&
         a.sinr_uplink_uav_db == b.sinr_uplink_uav_db &&
         a.sinr_relay_db == b.sinr_relay_db &&
         a.sinr_uplink_ugv_db == b.sinr_uplink_ugv_db;
}

bool StepResultsEqual(const env::StepResult& a, const env::StepResult& b) {
  if (a.observations != b.observations || a.state != b.state ||
      a.rewards != b.rewards || a.done != b.done ||
      a.events.size() != b.events.size()) {
    return false;
  }
  for (size_t i = 0; i < a.events.size(); ++i) {
    if (!EventsEqual(a.events[i], b.events[i])) return false;
  }
  return true;
}

void RandomActions(util::Rng& rng, std::vector<env::UvAction>& actions) {
  for (env::UvAction& a : actions) {
    a = {rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)};
  }
}

}  // namespace

OracleCheckResult NnKernelSelfCheck() {
  if (nn::GetKernelConfig().gemm == nn::GemmKernel::kNaive) return {};
  // Fixed shapes spanning the interesting kernel regimes: tiny (below any
  // blocking threshold), tall-skinny, and a block-sized square.
  struct Shape {
    int m, k, n;
  };
  constexpr std::array<Shape, 3> kShapes = {{{7, 13, 5}, {1, 96, 33}, {64, 64, 64}}};
  util::Rng rng(0x0AC1E5EEDULL);
  for (const Shape& s : kShapes) {
    const nn::Tensor a = nn::Tensor::Randn(s.m, s.k, rng);
    const nn::Tensor b = nn::Tensor::Randn(s.k, s.n, rng);
    const nn::Tensor bt = nn::Tensor::Randn(s.n, s.k, rng);
    const nn::Tensor at = nn::Tensor::Randn(s.k, s.m, rng);
    const char* op = nullptr;
    if (!nn::MatMul(a, b).SameAs(nn::internal::NaiveMatMul(a, b))) {
      op = "MatMul";
    } else if (!nn::MatMulTransposedB(a, bt).SameAs(
                   nn::internal::NaiveMatMulTransposedB(a, bt))) {
      op = "MatMulTransposedB";
    } else if (!nn::MatMulTransposedA(at, b).SameAs(
                   nn::internal::NaiveMatMulTransposedA(at, b))) {
      op = "MatMulTransposedA";
    }
    if (op) {
      std::ostringstream detail;
      detail << op << " (" << s.m << "x" << s.k << " * " << s.k << "x" << s.n
             << ") differs from the naive reference kernel";
      return {false, detail.str()};
    }
  }
  return {};
}

OracleCheckResult EnvSelfCheck(const env::ScEnv& env, int steps) {
  if (!env.config().use_spatial_index || steps <= 0) return {};
  // Both copies inherit env's current RNG state, so their episode
  // randomness is identical; only the query paths differ.
  env::ScEnv indexed(env);
  env::ScEnv naive(env);
  naive.DisableSpatialIndex();

  env::StepResult si, sn;
  indexed.Reset(si);
  naive.Reset(sn);
  if (!StepResultsEqual(si, sn)) {
    return {false, "Reset: indexed env differs from the naive oracle"};
  }
  util::Rng action_rng(0x0AC1E0ACULL);
  std::vector<env::UvAction> actions(
      static_cast<size_t>(indexed.num_agents()));
  for (int t = 0; t < steps; ++t) {
    RandomActions(action_rng, actions);
    indexed.Step(actions, si);
    naive.Step(actions, sn);
    if (!StepResultsEqual(si, sn)) {
      std::ostringstream detail;
      detail << "Step " << t << ": indexed env differs from the naive oracle";
      return {false, detail.str()};
    }
    if (si.done) break;
  }
  return {};
}

OracleCheckResult ChannelSelfCheck(const env::ScEnv& env, int steps) {
  if (!env.config().use_channel_batch || env.config().env_fast_math ||
      steps <= 0) {
    return {};
  }
  env::ScEnv batched(env);
  env::ScEnv scalar(env);
  scalar.DisableChannelBatch();

  env::StepResult sb, ss;
  batched.Reset(sb);
  scalar.Reset(ss);
  if (!StepResultsEqual(sb, ss)) {
    return {false, "Reset: batched channel differs from the scalar oracle"};
  }
  util::Rng action_rng(0x0AC1E0ACULL);
  std::vector<env::UvAction> actions(
      static_cast<size_t>(batched.num_agents()));
  for (int t = 0; t < steps; ++t) {
    RandomActions(action_rng, actions);
    batched.Step(actions, sb);
    scalar.Step(actions, ss);
    if (!StepResultsEqual(sb, ss)) {
      std::ostringstream detail;
      detail << "Step " << t
             << ": batched channel differs from the scalar oracle";
      return {false, detail.str()};
    }
    if (sb.done) break;
  }
  return {};
}

}  // namespace agsc::core
