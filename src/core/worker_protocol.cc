#include "core/worker_protocol.h"

#include "util/ipc.h"

namespace agsc::core {

namespace {

using util::WireReader;
using util::WireWriter;

void PutRngState(WireWriter& w,
                 const std::array<uint64_t, util::Rng::kStateWords>& state) {
  for (uint64_t word : state) w.U64(word);
}

bool GetRngState(WireReader& r,
                 std::array<uint64_t, util::Rng::kStateWords>& state) {
  for (uint64_t& word : state) word = r.U64();
  return r.ok();
}

void PutActions(WireWriter& w, const WorkerActions& actions) {
  w.U32(static_cast<uint32_t>(actions.per_agent.size()));
  for (const std::array<float, 2>& a : actions.per_agent) {
    w.F32(a[0]);
    w.F32(a[1]);
  }
}

bool GetActions(WireReader& r, WorkerActions& actions) {
  const uint32_t n = r.U32();
  if (!r.ok() || n > 1u << 16) return false;
  actions.per_agent.resize(n);
  for (std::array<float, 2>& a : actions.per_agent) {
    a[0] = r.F32();
    a[1] = r.F32();
  }
  return r.ok();
}

}  // namespace

std::string EncodeWorkerInit(const WorkerInit& init) {
  WireWriter w;
  w.U32(kWorkerProtocolVersion);
  w.U32(static_cast<uint32_t>(init.campus));
  const env::EnvConfig& c = init.config;
  // Every EnvConfig field, declaration order. The decoder's Done() check
  // turns any drift between this list and the struct into a loud reject
  // at spawn instead of a silent behavioral divergence.
  w.I32(c.num_timeslots);
  w.F64(c.tau_move);
  w.F64(c.tau_coll);
  w.I32(c.num_pois);
  w.F64(c.initial_data_gbit);
  w.I32(c.num_uavs);
  w.I32(c.num_ugvs);
  w.F64(c.uav_vmax);
  w.F64(c.ugv_vmax);
  w.F64(c.uav_height);
  w.F64(c.uav_energy_kj);
  w.F64(c.ugv_energy_kj);
  w.F64(c.uav_idle_power_w);
  w.F64(c.uav_move_power_w);
  w.F64(c.ugv_idle_power_w);
  w.F64(c.ugv_move_power_w);
  w.I32(c.num_subchannels);
  w.F64(c.bandwidth_hz);
  w.F64(c.noise_psd);
  w.F64(c.alpha1);
  w.F64(c.alpha2);
  w.F64(c.eta_los_db);
  w.F64(c.eta_nlos_db);
  w.F64(c.omega_los);
  w.F64(c.beta_los);
  w.F64(c.rho_uav_w);
  w.F64(c.rho_poi_w);
  w.F64(c.sinr_threshold_db);
  w.F64(c.throughput_factor);
  w.U32(static_cast<uint32_t>(c.medium_access));
  w.F64(c.rayleigh_mean_gain);
  w.U32(c.rayleigh_fading ? 1 : 0);
  w.F64(c.omega_coll);
  w.F64(c.omega_move);
  w.F64(c.observe_range_fraction);
  w.F64(c.neighbor_range_fraction);
  w.U32(c.record_event_log ? 1 : 0);
  w.U32(c.use_spatial_index ? 1 : 0);
  w.U32(c.use_channel_batch ? 1 : 0);
  w.U32(c.env_fast_math ? 1 : 0);
  return w.Take();
}

bool DecodeWorkerInit(const std::string& payload, WorkerInit& out) {
  WireReader r(payload);
  if (r.U32() != kWorkerProtocolVersion) return false;
  const uint32_t campus = r.U32();
  if (!r.ok() || campus > static_cast<uint32_t>(map::CampusId::kNcsu)) {
    return false;
  }
  out.campus = static_cast<map::CampusId>(campus);
  env::EnvConfig& c = out.config;
  c.num_timeslots = r.I32();
  c.tau_move = r.F64();
  c.tau_coll = r.F64();
  c.num_pois = r.I32();
  c.initial_data_gbit = r.F64();
  c.num_uavs = r.I32();
  c.num_ugvs = r.I32();
  c.uav_vmax = r.F64();
  c.ugv_vmax = r.F64();
  c.uav_height = r.F64();
  c.uav_energy_kj = r.F64();
  c.ugv_energy_kj = r.F64();
  c.uav_idle_power_w = r.F64();
  c.uav_move_power_w = r.F64();
  c.ugv_idle_power_w = r.F64();
  c.ugv_move_power_w = r.F64();
  c.num_subchannels = r.I32();
  c.bandwidth_hz = r.F64();
  c.noise_psd = r.F64();
  c.alpha1 = r.F64();
  c.alpha2 = r.F64();
  c.eta_los_db = r.F64();
  c.eta_nlos_db = r.F64();
  c.omega_los = r.F64();
  c.beta_los = r.F64();
  c.rho_uav_w = r.F64();
  c.rho_poi_w = r.F64();
  c.sinr_threshold_db = r.F64();
  c.throughput_factor = r.F64();
  const uint32_t medium = r.U32();
  if (!r.ok() || medium > static_cast<uint32_t>(env::MediumAccess::kOfdma)) {
    return false;
  }
  c.medium_access = static_cast<env::MediumAccess>(medium);
  c.rayleigh_mean_gain = r.F64();
  c.rayleigh_fading = r.U32() != 0;
  c.omega_coll = r.F64();
  c.omega_move = r.F64();
  c.observe_range_fraction = r.F64();
  c.neighbor_range_fraction = r.F64();
  c.record_event_log = r.U32() != 0;
  c.use_spatial_index = r.U32() != 0;
  c.use_channel_batch = r.U32() != 0;
  c.env_fast_math = r.U32() != 0;
  return r.Done();
}

std::string EncodeWorkerRegister(const WorkerRegister& reg) {
  WireWriter w;
  w.U32(reg.protocol_version);
  w.I32(reg.worker_id);
  w.I32(reg.connect_seq);
  return w.Take();
}

bool DecodeWorkerRegister(const std::string& payload, WorkerRegister& out) {
  WireReader r(payload);
  out.protocol_version = r.U32();
  out.worker_id = r.I32();
  out.connect_seq = r.I32();
  return r.Done();
}

std::string EncodeWorkerHello(const WorkerHello& hello) {
  WireWriter w;
  w.U32(hello.protocol_version);
  w.I32(hello.worker_id);
  w.I32(hello.num_agents);
  w.I32(hello.obs_dim);
  w.I32(hello.state_dim);
  return w.Take();
}

bool DecodeWorkerHello(const std::string& payload, WorkerHello& out) {
  WireReader r(payload);
  out.protocol_version = r.U32();
  out.worker_id = r.I32();
  out.num_agents = r.I32();
  out.obs_dim = r.I32();
  out.state_dim = r.I32();
  return r.Done();
}

std::string EncodeEpisodePrefix(const EpisodePrefix& prefix) {
  WireWriter w;
  w.U32(prefix.flags);
  PutRngState(w, prefix.rng_state);
  w.U32(static_cast<uint32_t>(prefix.replay.size()));
  for (const WorkerActions& actions : prefix.replay) PutActions(w, actions);
  return w.Take();
}

bool DecodeEpisodePrefix(const std::string& payload, EpisodePrefix& out) {
  WireReader r(payload);
  out.flags = r.U32();
  if (!GetRngState(r, out.rng_state)) return false;
  const uint32_t steps = r.U32();
  if (!r.ok() || steps > 1u << 20) return false;
  out.replay.resize(steps);
  for (WorkerActions& actions : out.replay) {
    if (!GetActions(r, actions)) return false;
  }
  return r.Done();
}

std::string EncodeWorkerActions(const WorkerActions& actions) {
  WireWriter w;
  PutActions(w, actions);
  return w.Take();
}

bool DecodeWorkerActions(const std::string& payload, WorkerActions& out) {
  WireReader r(payload);
  return GetActions(r, out) && r.Done();
}

std::string EncodeWorkerStepResult(const WorkerStepResult& result) {
  WireWriter w;
  w.U32(result.is_reset ? 0 : 1);
  w.U32(result.done ? 1 : 0);
  w.U32(static_cast<uint32_t>(result.observations.size()));
  for (const std::vector<float>& obs : result.observations) w.F32Vec(obs);
  w.F32Vec(result.state);
  w.F64Vec(result.rewards);
  w.U32(static_cast<uint32_t>(result.he_neighbors.size()));
  for (const std::vector<int32_t>& n : result.he_neighbors) w.I32Vec(n);
  w.U32(static_cast<uint32_t>(result.ho_neighbors.size()));
  for (const std::vector<int32_t>& n : result.ho_neighbors) w.I32Vec(n);
  PutRngState(w, result.rng_state);
  if (result.done) {
    w.F64(result.metrics.data_collection_ratio);
    w.F64(result.metrics.data_loss_ratio);
    w.F64(result.metrics.energy_consumption_ratio);
    w.F64(result.metrics.geographical_fairness);
    w.F64(result.metrics.efficiency);
  }
  return w.Take();
}

bool DecodeWorkerStepResult(const std::string& payload,
                            WorkerStepResult& out) {
  WireReader r(payload);
  const uint32_t kind = r.U32();
  if (!r.ok() || kind > 1) return false;
  out.is_reset = kind == 0;
  out.done = r.U32() != 0;
  const uint32_t agents = r.U32();
  if (!r.ok() || agents > 1u << 16) return false;
  out.observations.resize(agents);
  for (std::vector<float>& obs : out.observations) {
    if (!r.F32Vec(obs)) return false;
  }
  if (!r.F32Vec(out.state)) return false;
  if (!r.F64Vec(out.rewards)) return false;
  const uint32_t he = r.U32();
  if (!r.ok() || he > 1u << 16) return false;
  out.he_neighbors.resize(he);
  for (std::vector<int32_t>& n : out.he_neighbors) {
    if (!r.I32Vec(n)) return false;
  }
  const uint32_t ho = r.U32();
  if (!r.ok() || ho > 1u << 16) return false;
  out.ho_neighbors.resize(ho);
  for (std::vector<int32_t>& n : out.ho_neighbors) {
    if (!r.I32Vec(n)) return false;
  }
  if (!GetRngState(r, out.rng_state)) return false;
  if (out.done) {
    out.metrics.data_collection_ratio = r.F64();
    out.metrics.data_loss_ratio = r.F64();
    out.metrics.energy_consumption_ratio = r.F64();
    out.metrics.geographical_fairness = r.F64();
    out.metrics.efficiency = r.F64();
  } else {
    out.metrics = env::Metrics{};
  }
  return r.Done();
}

bool CampusIdFromName(const std::string& name, map::CampusId& out) {
  for (map::CampusId id : {map::CampusId::kPurdue, map::CampusId::kNcsu}) {
    if (map::CampusName(id) == name) {
      out = id;
      return true;
    }
  }
  return false;
}

}  // namespace agsc::core
