#include "core/rollout.h"

#include <stdexcept>

#include "util/rng.h"

namespace agsc::core {

void AgentRollout::Clear() {
  obs.clear();
  next_obs.clear();
  action_dir.clear();
  action_speed.clear();
  logp_old.clear();
  reward_ext.clear();
  reward_int.clear();
  reward.clear();
  reward_he.clear();
  reward_ho.clear();
  he_neighbors.clear();
  ho_neighbors.clear();
  done.clear();
}

namespace {

template <typename T>
void AppendVec(std::vector<T>& dst, const std::vector<T>& src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

}  // namespace

void AgentRollout::Append(const AgentRollout& other) {
  AppendVec(obs, other.obs);
  AppendVec(next_obs, other.next_obs);
  AppendVec(action_dir, other.action_dir);
  AppendVec(action_speed, other.action_speed);
  AppendVec(logp_old, other.logp_old);
  AppendVec(reward_ext, other.reward_ext);
  AppendVec(reward_int, other.reward_int);
  AppendVec(reward, other.reward);
  AppendVec(reward_he, other.reward_he);
  AppendVec(reward_ho, other.reward_ho);
  AppendVec(he_neighbors, other.he_neighbors);
  AppendVec(ho_neighbors, other.ho_neighbors);
  AppendVec(done, other.done);
}

void MultiAgentBuffer::Append(const MultiAgentBuffer& other) {
  if (other.agents.size() != agents.size()) {
    throw std::invalid_argument("MultiAgentBuffer::Append: agent count");
  }
  for (size_t k = 0; k < agents.size(); ++k) agents[k].Append(other.agents[k]);
  AppendVec(states, other.states);
  AppendVec(next_states, other.next_states);
  AppendVec(reward_all, other.reward_all);
  AppendVec(done, other.done);
}

nn::Tensor PackBatch(const std::vector<std::vector<float>>& rows,
                     const std::vector<int>& indices) {
  if (indices.empty()) throw std::invalid_argument("PackBatch: empty batch");
  const int dim = static_cast<int>(rows[indices[0]].size());
  nn::Tensor batch(static_cast<int>(indices.size()), dim);
  for (size_t r = 0; r < indices.size(); ++r) {
    const std::vector<float>& row = rows[indices[r]];
    for (int c = 0; c < dim; ++c) batch(static_cast<int>(r), c) = row[c];
  }
  return batch;
}

nn::Tensor AgentRollout::ObsBatch(const std::vector<int>& indices) const {
  return PackBatch(obs, indices);
}

nn::Tensor AgentRollout::NextObsBatch(const std::vector<int>& indices) const {
  return PackBatch(next_obs, indices);
}

nn::Tensor AgentRollout::ActionBatch(const std::vector<int>& indices) const {
  nn::Tensor batch(static_cast<int>(indices.size()), 2);
  for (size_t r = 0; r < indices.size(); ++r) {
    batch(static_cast<int>(r), 0) = action_dir[indices[r]];
    batch(static_cast<int>(r), 1) = action_speed[indices[r]];
  }
  return batch;
}

void MultiAgentBuffer::Clear() {
  for (AgentRollout& a : agents) a.Clear();
  states.clear();
  next_states.clear();
  reward_all.clear();
  done.clear();
}

nn::Tensor MultiAgentBuffer::StateBatch(const std::vector<int>& indices) const {
  return PackBatch(states, indices);
}

nn::Tensor MultiAgentBuffer::NextStateBatch(
    const std::vector<int>& indices) const {
  return PackBatch(next_states, indices);
}

std::vector<int> AllIndices(size_t n) {
  std::vector<int> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = static_cast<int>(i);
  return idx;
}

std::vector<std::vector<int>> MakeMinibatches(size_t n, int batch_size,
                                              util::Rng& rng) {
  std::vector<int> idx = AllIndices(n);
  rng.Shuffle(idx);
  std::vector<std::vector<int>> batches;
  for (size_t start = 0; start < idx.size();
       start += static_cast<size_t>(batch_size)) {
    const size_t end = std::min(idx.size(), start + batch_size);
    batches.emplace_back(idx.begin() + start, idx.begin() + end);
  }
  return batches;
}

}  // namespace agsc::core
