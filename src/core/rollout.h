#ifndef AGSC_CORE_ROLLOUT_H_
#define AGSC_CORE_ROLLOUT_H_

#include <cstdint>
#include <vector>

#include "nn/tensor.h"
#include "util/rng.h"

namespace agsc::core {

/// One agent's on-policy experience for the current iteration (the shared
/// "data buffer" of Algorithm 1, Lines 5 and 11).
struct AgentRollout {
  std::vector<std::vector<float>> obs;       ///< o_t.
  std::vector<std::vector<float>> next_obs;  ///< o_{t+1}.
  std::vector<float> action_dir;             ///< Raw action dim 0.
  std::vector<float> action_speed;           ///< Raw action dim 1.
  std::vector<float> logp_old;               ///< log pi_old(a|o) at sampling.
  std::vector<float> reward_ext;             ///< Extrinsic (Eqn. 17).
  std::vector<float> reward_int;   ///< Intrinsic p_mu(k|o) (filled later).
  std::vector<float> reward;       ///< Compound r^k (Eqn. 19, filled later).
  std::vector<float> reward_he;    ///< Mean HE-neighbor reward (Eqn. 23).
  std::vector<float> reward_ho;    ///< Mean HO-neighbor reward (Eqn. 23).
  std::vector<std::vector<int>> he_neighbors;  ///< Per-step HE neighbor ids.
  std::vector<std::vector<int>> ho_neighbors;  ///< Per-step HO neighbor ids.
  std::vector<uint8_t> done;                   ///< Episode-boundary flags.

  size_t size() const { return obs.size(); }
  void Clear();

  /// Appends every stream of `other` after this rollout's streams (used by
  /// the vectorized sampler to merge per-worker rollouts in stable worker
  /// order).
  void Append(const AgentRollout& other);

  /// Packs rows `indices` of `obs` into a batch tensor.
  nn::Tensor ObsBatch(const std::vector<int>& indices) const;
  /// Packs rows `indices` of `next_obs` into a batch tensor.
  nn::Tensor NextObsBatch(const std::vector<int>& indices) const;
  /// Packs rows `indices` of the 2-D actions into an Nx2 tensor.
  nn::Tensor ActionBatch(const std::vector<int>& indices) const;
};

/// The full multi-agent buffer: per-agent rollouts plus the global-state
/// stream shared by MAPPO critics and the overall value network V_all.
struct MultiAgentBuffer {
  std::vector<AgentRollout> agents;
  std::vector<std::vector<float>> states;       ///< s_t.
  std::vector<std::vector<float>> next_states;  ///< s_{t+1}.
  std::vector<float> reward_all;  ///< Sum over agents of r^k (Eqn. 29).
  std::vector<uint8_t> done;

  explicit MultiAgentBuffer(int num_agents) : agents(num_agents) {}

  size_t size() const { return states.size(); }
  void Clear();

  /// Appends `other` (same agent count) after this buffer's streams,
  /// agent-by-agent and for the global-state streams.
  void Append(const MultiAgentBuffer& other);

  nn::Tensor StateBatch(const std::vector<int>& indices) const;
  nn::Tensor NextStateBatch(const std::vector<int>& indices) const;
};

/// Packs rows `indices` of `rows` (all of equal length) into a tensor.
nn::Tensor PackBatch(const std::vector<std::vector<float>>& rows,
                     const std::vector<int>& indices);

/// Returns {0, 1, ..., n-1}.
std::vector<int> AllIndices(size_t n);

/// Splits a shuffled copy of {0..n-1} into minibatches of at most
/// `batch_size` (the last one may be smaller; never empty).
std::vector<std::vector<int>> MakeMinibatches(size_t n, int batch_size,
                                              util::Rng& rng);

}  // namespace agsc::core

#endif  // AGSC_CORE_ROLLOUT_H_
