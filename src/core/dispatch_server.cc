#include "core/dispatch_server.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/fault_inject.h"
#include "util/rng.h"
#include "util/stats.h"

namespace agsc::core {

namespace {

using Clock = std::chrono::steady_clock;

/// Sliding window backing the latency quantiles: large enough for stable
/// p99 estimates, small enough that Stats() stays cheap.
constexpr size_t kLatencyWindow = 4096;

/// Smoothing factor of the admission estimator's batch-service-time EWMA.
/// 0.2 forgets a one-off stall in a handful of batches while still damping
/// per-batch jitter.
constexpr double kEwmaAlpha = 0.2;

/// Session env streams follow the VecSampler discipline — odd split ids are
/// env streams (even ones are sampling streams, unused here, reserved so a
/// future stochastic-serving mode slots in without re-seeding sessions).
uint64_t SessionEnvStreamId(int session) {
  return 2 * static_cast<uint64_t>(session) + 1;
}

double MsSince(Clock::time_point start, Clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - start).count();
}

}  // namespace

const char* RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kQueueFull:
      return "queue-full";
    case RejectReason::kClientCap:
      return "client-cap";
    case RejectReason::kDeadline:
      return "deadline";
    case RejectReason::kShed:
      return "shed";
    case RejectReason::kDisconnect:
      return "disconnect";
  }
  return "unknown";
}

DispatchServer::DispatchServer(const env::ScEnv& primary_env,
                               const DispatchConfig& config)
    : config_(config) {
  if (config_.num_sessions < 1) config_.num_sessions = 1;
  if (config_.max_batch < 1) config_.max_batch = 1;
  if (config_.max_queue < 0) config_.max_queue = 0;
  if (config_.per_client_inflight < 0) config_.per_client_inflight = 0;
  util::Rng base(config_.seed);
  sessions_.reserve(static_cast<size_t>(config_.num_sessions));
  for (int s = 0; s < config_.num_sessions; ++s) {
    Session session;
    session.env = std::make_unique<env::ScEnv>(primary_env);
    session.env->rng() = base.Split(SessionEnvStreamId(s));
    session.env->Reset(session.current);
    sessions_.push_back(std::move(session));
  }
  latency_window_.reserve(kLatencyWindow);
}

DispatchServer::~DispatchServer() { Stop(); }

void DispatchServer::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  batcher_ = std::thread(&DispatchServer::BatcherLoop, this);
}

void DispatchServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
  // Fail anything still queued (requests submitted while stopping, or a
  // Stop without Start).
  std::vector<std::unique_ptr<Request>> leftovers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [client, state] : clients_) {
      for (std::unique_ptr<Request>& request : state.queue) {
        leftovers.push_back(std::move(request));
      }
      state.queue.clear();
    }
    clients_.clear();
    rr_order_.clear();
    queued_priorities_.clear();
    queue_depth_ = 0;
    queue_depth_gauge_.store(0, std::memory_order_relaxed);
    running_ = false;
  }
  for (std::unique_ptr<Request>& request : leftovers) {
    DispatchResult result;
    result.shutdown = true;
    request->promise.set_value(result);
  }
  if (!leftovers.empty()) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.requests_shutdown += leftovers.size();
  }
}

uint64_t DispatchServer::PublishSnapshot(
    std::shared_ptr<PolicySnapshot> snapshot) {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  // Stamp the version before the swap: the snapshot must be immutable by
  // the time any reader can acquire it.
  const uint64_t version = registry_.version() + 1;
  snapshot->set_version(version);
  registry_.Publish(std::move(snapshot));
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.publishes;
  }
  return version;
}

void DispatchServer::CountPublishReject() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.publish_rejects;
}

void DispatchServer::CountQuarantine() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.clients_quarantined;
}

DispatchResult DispatchServer::Act(int agent, const std::vector<float>& obs,
                                   const RequestOptions& options) {
  return ActAsync(agent, obs, options).get();
}

std::future<DispatchResult> DispatchServer::ActAsync(
    int agent, const std::vector<float>& obs, const RequestOptions& options) {
  auto request = std::make_unique<Request>();
  request->kind = RequestKind::kStateless;
  request->agent = agent;
  request->obs = obs;
  request->client = options.client;
  request->priority = options.priority;
  return SubmitAsync(std::move(request));
}

DispatchResult DispatchServer::StepSession(int session,
                                           const RequestOptions& options) {
  return StepSessionAsync(session, options).get();
}

std::future<DispatchResult> DispatchServer::StepSessionAsync(
    int session, const RequestOptions& options) {
  if (session < 0 || session >= num_sessions()) {
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.requests_invalid;
    }
    std::promise<DispatchResult> failed;
    failed.set_value(DispatchResult{});
    return failed.get_future();
  }
  auto request = std::make_unique<Request>();
  request->kind = RequestKind::kSession;
  request->session = session;
  request->client = options.client;
  request->priority = options.priority;
  return SubmitAsync(std::move(request));
}

void DispatchServer::RejectRequest(Request& request, RejectReason reason,
                                   bool overloaded) {
  DispatchResult result;
  result.rejected = true;
  result.reject_reason = reason;
  result.overloaded = overloaded;
  result.latency_ms = MsSince(request.enqueue_time, Clock::now());
  request.promise.set_value(result);
}

void DispatchServer::CountRejectLocked(RejectReason reason) {
  ++stats_.requests_rejected;
  switch (reason) {
    case RejectReason::kQueueFull:
      ++stats_.rejected_queue_full;
      break;
    case RejectReason::kClientCap:
      ++stats_.rejected_client_cap;
      break;
    case RejectReason::kDeadline:
      ++stats_.rejected_deadline;
      break;
    default:
      break;
  }
}

void DispatchServer::NotePriorityQueuedLocked(int priority) {
  ++queued_priorities_[priority];
}

void DispatchServer::NotePriorityDequeuedLocked(int priority) {
  auto it = queued_priorities_.find(priority);
  if (it != queued_priorities_.end() && --it->second == 0) {
    queued_priorities_.erase(it);
  }
}

void DispatchServer::UpdateOverloadLocked() {
  queue_depth_gauge_.store(queue_depth_, std::memory_order_relaxed);
  if (config_.max_queue <= 0) return;
  const size_t high = std::max<size_t>(
      1, static_cast<size_t>(config_.max_queue) * 3 / 4);
  const size_t low = static_cast<size_t>(config_.max_queue) / 4;
  const bool now_overloaded = overloaded_.load(std::memory_order_relaxed);
  if (!now_overloaded && queue_depth_ >= high) {
    overloaded_.store(true, std::memory_order_relaxed);
    overload_entries_.fetch_add(1, std::memory_order_relaxed);
  } else if (now_overloaded && queue_depth_ <= low) {
    overloaded_.store(false, std::memory_order_relaxed);
  }
}

std::future<DispatchResult> DispatchServer::SubmitAsync(
    std::unique_ptr<Request> request) {
  const Clock::time_point now = Clock::now();
  request->enqueue_time = now;
  request->deadline = config_.deadline_ms > 0
                          ? now + std::chrono::milliseconds(config_.deadline_ms)
                          : Clock::time_point::max();
  std::future<DispatchResult> future = request->promise.get_future();

  bool shutdown = false;
  RejectReason reason = RejectReason::kNone;
  std::unique_ptr<Request> shed_victim;
  bool overloaded_now = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    overloaded_now = overloaded_.load(std::memory_order_relaxed);
    if (stop_requested_ || !running_) {
      shutdown = true;
    } else {
      ClientState& client = clients_[request->client];
      // 1. Per-client in-flight cap: a flooder saturates its own budget,
      //    not the shared queue.
      if (config_.per_client_inflight > 0 &&
          client.queue.size() + client.inflight >=
              static_cast<size_t>(config_.per_client_inflight)) {
        reason = RejectReason::kClientCap;
      } else if (config_.admission &&
                 request->deadline != Clock::time_point::max()) {
        // 2. Deadline-aware admission: batches strictly ahead of this
        //    request x the EWMA batch service time. floor(), not ceil() —
        //    an empty queue must always admit regardless of how slow the
        //    last (possibly fault-stalled) batch was.
        const double ewma = ewma_batch_ms_.load(std::memory_order_relaxed);
        if (ewma > 0.0) {
          const double batches_ahead = static_cast<double>(
              queue_depth_ / static_cast<size_t>(config_.max_batch));
          const double est_wait_ms = batches_ahead * ewma;
          if (now + std::chrono::duration<double, std::milli>(est_wait_ms) >
              request->deadline) {
            reason = RejectReason::kDeadline;
          }
        }
      }
      // 3. Bounded queue with priority-ordered brownout shedding: when
      //    full, a strictly-lower-priority queued request is displaced in
      //    favor of the arrival; otherwise the arrival is refused.
      if (!shutdown && reason == RejectReason::kNone &&
          config_.max_queue > 0 &&
          queue_depth_ >= static_cast<size_t>(config_.max_queue)) {
        // Min-priority fast path: queued_priorities_ tracks how many queued
        // requests exist at each level, so an arrival that cannot displace
        // anything (the common equal-priority overload) is refused without
        // touching the queues — the O(depth) victim scan below only runs
        // when a strictly-lower-priority victim is known to exist.
        const int min_priority = queued_priorities_.empty()
                                     ? std::numeric_limits<int>::max()
                                     : queued_priorities_.begin()->first;
        if (min_priority >= request->priority) {
          reason = RejectReason::kQueueFull;
        } else {
          uint64_t victim_client = 0;
          size_t victim_index = 0;
          bool found = false;
          for (const auto& [id, state] : clients_) {
            // Scan back-to-front so among equal priorities the youngest
            // request is displaced and FIFO order is preserved for the rest.
            for (size_t i = state.queue.size(); i-- > 0;) {
              if (state.queue[i]->priority == min_priority) {
                victim_client = id;
                victim_index = i;
                found = true;
                break;
              }
            }
            if (found) break;
          }
          ClientState& vc = clients_[victim_client];
          shed_victim = std::move(vc.queue[victim_index]);
          vc.queue.erase(vc.queue.begin() +
                         static_cast<std::ptrdiff_t>(victim_index));
          --queue_depth_;
          NotePriorityDequeuedLocked(min_priority);
          if (vc.queue.empty()) {
            auto it = std::find(rr_order_.begin(), rr_order_.end(),
                                victim_client);
            if (it != rr_order_.end()) rr_order_.erase(it);
          }
        }
      }
      if (reason == RejectReason::kNone) {
        const uint64_t client_id = request->client;
        // Invariant: rr_order_ holds exactly the clients with nonempty
        // queues, so an empty->nonempty transition (re)enters the rotation.
        const bool was_empty = client.queue.empty();
        NotePriorityQueuedLocked(request->priority);
        client.queue.push_back(std::move(request));
        if (was_empty) rr_order_.push_back(client_id);
        ++queue_depth_;
        UpdateOverloadLocked();
      }
    }
  }

  if (shutdown) {
    DispatchResult result;
    result.shutdown = true;
    request->promise.set_value(result);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests_shutdown;
    return future;
  }
  if (shed_victim != nullptr) {
    RejectRequest(*shed_victim, RejectReason::kShed, overloaded_now);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests_shed;
  }
  if (reason != RejectReason::kNone) {
    RejectRequest(*request, reason, overloaded_now);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    CountRejectLocked(reason);
    return future;
  }
  cv_.notify_one();
  return future;
}

void DispatchServer::CancelClient(uint64_t client) {
  std::vector<std::unique_ptr<Request>> shed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = clients_.find(client);
    if (it == clients_.end()) return;
    ClientState& state = it->second;
    if (!state.queue.empty()) {
      for (std::unique_ptr<Request>& request : state.queue) {
        NotePriorityDequeuedLocked(request->priority);
        shed.push_back(std::move(request));
      }
      state.queue.clear();
      queue_depth_ -= shed.size();
      auto rr = std::find(rr_order_.begin(), rr_order_.end(), client);
      if (rr != rr_order_.end()) rr_order_.erase(rr);
      UpdateOverloadLocked();
    }
    if (state.inflight == 0) clients_.erase(it);
  }
  if (shed.empty()) return;
  const bool overloaded_now = overloaded_.load(std::memory_order_relaxed);
  for (std::unique_ptr<Request>& request : shed) {
    RejectRequest(*request, RejectReason::kDisconnect, overloaded_now);
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.requests_shed += shed.size();
}

void DispatchServer::FinishClients(const std::vector<uint64_t>& batch_clients) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (uint64_t id : batch_clients) {
    auto it = clients_.find(id);
    if (it == clients_.end()) continue;
    if (it->second.inflight > 0) --it->second.inflight;
    if (it->second.inflight == 0 && it->second.queue.empty()) {
      clients_.erase(it);
    }
  }
}

void DispatchServer::BatcherLoop() {
  for (;;) {
    std::vector<std::unique_ptr<Request>> batch;
    std::vector<uint64_t> batch_clients;
    bool stopping = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_requested_ || queue_depth_ > 0; });
      stopping = stop_requested_;
      if (stopping && queue_depth_ == 0) return;
      // Weighted round-robin assembly: each client with queued work
      // contributes up to its weight per turn, so one deep queue cannot
      // monopolize a batch while other clients wait.
      const size_t take =
          stopping ? queue_depth_ : static_cast<size_t>(config_.max_batch);
      while (batch.size() < take && !rr_order_.empty()) {
        const uint64_t id = rr_order_.front();
        rr_order_.pop_front();
        ClientState& client = clients_[id];
        size_t n = std::min<size_t>(
            {static_cast<size_t>(std::max(client.weight, 1)),
             take - batch.size(), client.queue.size()});
        for (size_t i = 0; i < n; ++i) {
          NotePriorityDequeuedLocked(client.queue.front()->priority);
          batch.push_back(std::move(client.queue.front()));
          client.queue.pop_front();
          batch_clients.push_back(id);
        }
        client.inflight += n;
        queue_depth_ -= n;
        if (!client.queue.empty()) rr_order_.push_back(id);
      }
      UpdateOverloadLocked();
    }
    if (stopping) {
      for (std::unique_ptr<Request>& request : batch) {
        DispatchResult result;
        result.shutdown = true;
        request->promise.set_value(result);
      }
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.requests_shutdown += batch.size();
      }
      FinishClients(batch_clients);
      continue;
    }
    ServeBatch(std::move(batch));
    FinishClients(batch_clients);
  }
}

void DispatchServer::ServeBatch(std::vector<std::unique_ptr<Request>> batch) {
  const Clock::time_point service_start = Clock::now();
  // Fault hook: one guarded "task" per assembled batch, so the soak test
  // can stall the service path deterministically (STALL_TASK/STALL_MS) and
  // watch queued requests blow their deadlines.
  const long stall_ms = util::FaultInjector::Instance().NextStallMs();
  if (stall_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
  }
  const bool overloaded_now = overloaded_.load(std::memory_order_relaxed);

  // Updates the admission estimator from this batch's wall service time
  // (stall included — that IS the service time queued requests behind this
  // batch experience). Runs on every exit path.
  struct EwmaUpdater {
    DispatchServer* server;
    Clock::time_point start;
    ~EwmaUpdater() {
      const double sample_ms = MsSince(start, Clock::now());
      const double prev =
          server->ewma_batch_ms_.load(std::memory_order_relaxed);
      const double next =
          prev <= 0.0 ? sample_ms
                      : (1.0 - kEwmaAlpha) * prev + kEwmaAlpha * sample_ms;
      server->ewma_batch_ms_.store(next, std::memory_order_relaxed);
    }
  } ewma_updater{this, service_start};

  // Deadline check *after* the potential stall: a request that can no
  // longer be served in time is failed fast instead of fed a stale action.
  const Clock::time_point now = Clock::now();
  std::vector<std::unique_ptr<Request>> live;
  uint64_t expired = 0;
  live.reserve(batch.size());
  for (std::unique_ptr<Request>& request : batch) {
    if (request->deadline < now) {
      DispatchResult result;
      result.expired = true;
      result.overloaded = overloaded_now;
      result.latency_ms = MsSince(request->enqueue_time, now);
      request->promise.set_value(result);
      ++expired;
    } else {
      live.push_back(std::move(request));
    }
  }
  if (expired > 0) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.requests_expired += expired;
  }
  if (live.empty()) return;

  // Pin the snapshot once for the whole batch: every row in this batch is
  // served by the same parameters even if a publisher swaps mid-flight.
  const std::shared_ptr<const PolicySnapshot> snapshot = registry_.Acquire();
  if (snapshot == nullptr) {
    for (std::unique_ptr<Request>& request : live) {
      DispatchResult result;
      result.overloaded = overloaded_now;
      result.latency_ms = MsSince(request->enqueue_time, Clock::now());
      request->promise.set_value(result);
    }
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.requests_no_snapshot += live.size();
    return;
  }

  // Assemble rows: stateless requests contribute one row, session requests
  // one per agent. Invalid stateless rows are rejected up front so the
  // batch GEMM never throws.
  std::vector<PolicySnapshot::Row> rows;
  struct Slice {
    Request* request;
    size_t first = 0;
    size_t count = 0;
    bool valid = true;
  };
  std::vector<Slice> slices;
  slices.reserve(live.size());
  for (std::unique_ptr<Request>& request : live) {
    Slice slice;
    slice.request = request.get();
    slice.first = rows.size();
    if (request->kind == RequestKind::kStateless) {
      if (request->agent < 0 || request->agent >= snapshot->num_agents() ||
          static_cast<int>(request->obs.size()) != snapshot->obs_dim()) {
        slice.valid = false;
      } else {
        rows.push_back({request->agent, &request->obs});
        slice.count = 1;
      }
    } else {
      const Session& session = sessions_[static_cast<size_t>(request->session)];
      const int num_agents = session.env->num_agents();
      for (int k = 0; k < num_agents; ++k) {
        rows.push_back({k, &session.current.observations[static_cast<size_t>(k)]});
      }
      slice.count = static_cast<size_t>(num_agents);
    }
    slices.push_back(slice);
  }

  std::vector<std::array<float, 2>> actions;
  snapshot->ActBatch(rows, actions);

  uint64_t ok = 0, invalid = 0, env_steps = 0, episodes = 0;
  std::vector<env::UvAction> joint;
  std::vector<double> latencies;
  latencies.reserve(slices.size());
  // Results are computed first and published (promise.set_value) only
  // after the stats update below: a caller that has observed its reply
  // must already see it counted in Stats()/Health().
  std::vector<DispatchResult> results;
  results.reserve(slices.size());
  for (const Slice& slice : slices) {
    DispatchResult result;
    result.overloaded = overloaded_now;
    if (!slice.valid) {
      ++invalid;
    } else {
      result.ok = true;
      result.snapshot_version = snapshot->version();
      result.action = actions[slice.first];
      if (slice.request->kind == RequestKind::kSession) {
        Session& session =
            sessions_[static_cast<size_t>(slice.request->session)];
        joint.clear();
        for (size_t r = 0; r < slice.count; ++r) {
          const std::array<float, 2>& a = actions[slice.first + r];
          joint.push_back({a[0], a[1]});
        }
        session.env->Step(joint, session.scratch);
        std::swap(session.current, session.scratch);
        ++env_steps;
        if (session.current.done) {
          result.episode_done = true;
          ++episodes;
          session.env->Reset(session.current);
        }
      }
      ++ok;
    }
    result.latency_ms = MsSince(slice.request->enqueue_time, Clock::now());
    latencies.push_back(result.latency_ms);
    results.push_back(result);
  }

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.requests_ok += ok;
    stats_.requests_invalid += invalid;
    stats_.env_steps += env_steps;
    stats_.episodes_completed += episodes;
    ++stats_.batches;
    stats_.rows += rows.size();
    for (double ms : latencies) {
      ++stats_.latency_samples;
      stats_.latency_max_ms = std::max(stats_.latency_max_ms, ms);
      if (latency_window_.size() < kLatencyWindow) {
        latency_window_.push_back(ms);
      } else {
        latency_window_[latency_next_] = ms;
        latency_next_ = (latency_next_ + 1) % kLatencyWindow;
      }
    }
  }

  for (size_t i = 0; i < slices.size(); ++i) {
    slices[i].request->promise.set_value(results[i]);
  }
}

DispatchStats DispatchServer::Stats() const {
  DispatchStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    out = stats_;
    if (!latency_window_.empty()) {
      out.latency_p50_ms = util::Quantile(latency_window_, 0.50);
      out.latency_p99_ms = util::Quantile(latency_window_, 0.99);
    }
  }
  out.overloaded = overloaded_.load(std::memory_order_relaxed);
  out.queue_depth = queue_depth_gauge_.load(std::memory_order_relaxed);
  out.overload_entries = overload_entries_.load(std::memory_order_relaxed);
  out.ewma_batch_ms = ewma_batch_ms_.load(std::memory_order_relaxed);
  return out;
}

DispatchHealth DispatchServer::Health() const {
  DispatchHealth health;
  health.overloaded = overloaded_.load(std::memory_order_relaxed);
  health.queue_depth = queue_depth_gauge_.load(std::memory_order_relaxed);
  health.ewma_batch_ms = ewma_batch_ms_.load(std::memory_order_relaxed);
  health.snapshot_version = registry_.version();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    health.requests_ok = stats_.requests_ok;
    health.requests_expired = stats_.requests_expired;
    health.requests_rejected = stats_.requests_rejected;
    health.requests_shed = stats_.requests_shed;
    health.clients_quarantined = stats_.clients_quarantined;
  }
  return health;
}

}  // namespace agsc::core
