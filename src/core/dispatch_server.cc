#include "core/dispatch_server.h"

#include <algorithm>
#include <utility>

#include "util/fault_inject.h"
#include "util/rng.h"
#include "util/stats.h"

namespace agsc::core {

namespace {

using Clock = std::chrono::steady_clock;

/// Sliding window backing the latency quantiles: large enough for stable
/// p99 estimates, small enough that Stats() stays cheap.
constexpr size_t kLatencyWindow = 4096;

/// Session env streams follow the VecSampler discipline — odd split ids are
/// env streams (even ones are sampling streams, unused here, reserved so a
/// future stochastic-serving mode slots in without re-seeding sessions).
uint64_t SessionEnvStreamId(int session) {
  return 2 * static_cast<uint64_t>(session) + 1;
}

double MsSince(Clock::time_point start, Clock::time_point now) {
  return std::chrono::duration<double, std::milli>(now - start).count();
}

}  // namespace

DispatchServer::DispatchServer(const env::ScEnv& primary_env,
                               const DispatchConfig& config)
    : config_(config) {
  if (config_.num_sessions < 1) config_.num_sessions = 1;
  if (config_.max_batch < 1) config_.max_batch = 1;
  util::Rng base(config_.seed);
  sessions_.reserve(static_cast<size_t>(config_.num_sessions));
  for (int s = 0; s < config_.num_sessions; ++s) {
    Session session;
    session.env = std::make_unique<env::ScEnv>(primary_env);
    session.env->rng() = base.Split(SessionEnvStreamId(s));
    session.env->Reset(session.current);
    sessions_.push_back(std::move(session));
  }
  latency_window_.reserve(kLatencyWindow);
}

DispatchServer::~DispatchServer() { Stop(); }

void DispatchServer::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  batcher_ = std::thread(&DispatchServer::BatcherLoop, this);
}

void DispatchServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
  // Fail anything still queued (requests submitted while stopping, or a
  // Stop without Start).
  std::deque<std::unique_ptr<Request>> leftovers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    leftovers.swap(queue_);
    running_ = false;
  }
  for (std::unique_ptr<Request>& request : leftovers) {
    DispatchResult result;
    result.shutdown = true;
    request->promise.set_value(result);
  }
  if (!leftovers.empty()) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.requests_shutdown += leftovers.size();
  }
}

uint64_t DispatchServer::PublishSnapshot(
    std::shared_ptr<PolicySnapshot> snapshot) {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  // Stamp the version before the swap: the snapshot must be immutable by
  // the time any reader can acquire it.
  const uint64_t version = registry_.version() + 1;
  snapshot->set_version(version);
  registry_.Publish(std::move(snapshot));
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    ++stats_.publishes;
  }
  return version;
}

void DispatchServer::CountPublishReject() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.publish_rejects;
}

DispatchResult DispatchServer::Act(int agent, const std::vector<float>& obs) {
  auto request = std::make_unique<Request>();
  request->kind = RequestKind::kStateless;
  request->agent = agent;
  request->obs = obs;
  return Submit(std::move(request));
}

DispatchResult DispatchServer::StepSession(int session) {
  if (session < 0 || session >= num_sessions()) {
    DispatchResult result;
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.requests_invalid;
    }
    return result;
  }
  auto request = std::make_unique<Request>();
  request->kind = RequestKind::kSession;
  request->session = session;
  return Submit(std::move(request));
}

DispatchResult DispatchServer::Submit(std::unique_ptr<Request> request) {
  const Clock::time_point now = Clock::now();
  request->enqueue_time = now;
  request->deadline = config_.deadline_ms > 0
                          ? now + std::chrono::milliseconds(config_.deadline_ms)
                          : Clock::time_point::max();
  std::future<DispatchResult> future = request->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_requested_ || !running_) {
      DispatchResult result;
      result.shutdown = true;
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.requests_shutdown;
      }
      return result;
    }
    queue_.push_back(std::move(request));
  }
  cv_.notify_one();
  return future.get();
}

void DispatchServer::BatcherLoop() {
  for (;;) {
    std::vector<std::unique_ptr<Request>> batch;
    bool stopping = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_requested_ || !queue_.empty(); });
      stopping = stop_requested_;
      if (stopping && queue_.empty()) return;
      const size_t take = static_cast<size_t>(config_.max_batch);
      while (!queue_.empty() && batch.size() < take) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    if (stopping) {
      for (std::unique_ptr<Request>& request : batch) {
        DispatchResult result;
        result.shutdown = true;
        request->promise.set_value(result);
      }
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.requests_shutdown += batch.size();
      continue;
    }
    ServeBatch(std::move(batch));
  }
}

void DispatchServer::ServeBatch(std::vector<std::unique_ptr<Request>> batch) {
  // Fault hook: one guarded "task" per assembled batch, so the soak test
  // can stall the service path deterministically (STALL_TASK/STALL_MS) and
  // watch queued requests blow their deadlines.
  const long stall_ms = util::FaultInjector::Instance().NextStallMs();
  if (stall_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
  }

  // Deadline check *after* the potential stall: a request that can no
  // longer be served in time is failed fast instead of fed a stale action.
  const Clock::time_point now = Clock::now();
  std::vector<std::unique_ptr<Request>> live;
  uint64_t expired = 0;
  live.reserve(batch.size());
  for (std::unique_ptr<Request>& request : batch) {
    if (request->deadline < now) {
      DispatchResult result;
      result.expired = true;
      result.latency_ms = MsSince(request->enqueue_time, now);
      request->promise.set_value(result);
      ++expired;
    } else {
      live.push_back(std::move(request));
    }
  }
  if (expired > 0) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.requests_expired += expired;
  }
  if (live.empty()) return;

  // Pin the snapshot once for the whole batch: every row in this batch is
  // served by the same parameters even if a publisher swaps mid-flight.
  const std::shared_ptr<const PolicySnapshot> snapshot = registry_.Acquire();
  if (snapshot == nullptr) {
    for (std::unique_ptr<Request>& request : live) {
      DispatchResult result;
      result.latency_ms = MsSince(request->enqueue_time, Clock::now());
      request->promise.set_value(result);
    }
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.requests_no_snapshot += live.size();
    return;
  }

  // Assemble rows: stateless requests contribute one row, session requests
  // one per agent. Invalid stateless rows are rejected up front so the
  // batch GEMM never throws.
  std::vector<PolicySnapshot::Row> rows;
  struct Slice {
    Request* request;
    size_t first = 0;
    size_t count = 0;
    bool valid = true;
  };
  std::vector<Slice> slices;
  slices.reserve(live.size());
  for (std::unique_ptr<Request>& request : live) {
    Slice slice;
    slice.request = request.get();
    slice.first = rows.size();
    if (request->kind == RequestKind::kStateless) {
      if (request->agent < 0 || request->agent >= snapshot->num_agents() ||
          static_cast<int>(request->obs.size()) != snapshot->obs_dim()) {
        slice.valid = false;
      } else {
        rows.push_back({request->agent, &request->obs});
        slice.count = 1;
      }
    } else {
      const Session& session = sessions_[static_cast<size_t>(request->session)];
      const int num_agents = session.env->num_agents();
      for (int k = 0; k < num_agents; ++k) {
        rows.push_back({k, &session.current.observations[static_cast<size_t>(k)]});
      }
      slice.count = static_cast<size_t>(num_agents);
    }
    slices.push_back(slice);
  }

  std::vector<std::array<float, 2>> actions;
  snapshot->ActBatch(rows, actions);

  uint64_t ok = 0, invalid = 0, env_steps = 0, episodes = 0;
  std::vector<env::UvAction> joint;
  std::vector<double> latencies;
  latencies.reserve(slices.size());
  for (const Slice& slice : slices) {
    DispatchResult result;
    if (!slice.valid) {
      ++invalid;
    } else {
      result.ok = true;
      result.snapshot_version = snapshot->version();
      result.action = actions[slice.first];
      if (slice.request->kind == RequestKind::kSession) {
        Session& session =
            sessions_[static_cast<size_t>(slice.request->session)];
        joint.clear();
        for (size_t r = 0; r < slice.count; ++r) {
          const std::array<float, 2>& a = actions[slice.first + r];
          joint.push_back({a[0], a[1]});
        }
        session.env->Step(joint, session.scratch);
        std::swap(session.current, session.scratch);
        ++env_steps;
        if (session.current.done) {
          result.episode_done = true;
          ++episodes;
          session.env->Reset(session.current);
        }
      }
      ++ok;
    }
    result.latency_ms = MsSince(slice.request->enqueue_time, Clock::now());
    latencies.push_back(result.latency_ms);
    slice.request->promise.set_value(result);
  }

  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.requests_ok += ok;
  stats_.requests_invalid += invalid;
  stats_.env_steps += env_steps;
  stats_.episodes_completed += episodes;
  ++stats_.batches;
  stats_.rows += rows.size();
  for (double ms : latencies) {
    ++stats_.latency_samples;
    stats_.latency_max_ms = std::max(stats_.latency_max_ms, ms);
    if (latency_window_.size() < kLatencyWindow) {
      latency_window_.push_back(ms);
    } else {
      latency_window_[latency_next_] = ms;
      latency_next_ = (latency_next_ + 1) % kLatencyWindow;
    }
  }
}

DispatchStats DispatchServer::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  DispatchStats out = stats_;
  if (!latency_window_.empty()) {
    out.latency_p50_ms = util::Quantile(latency_window_, 0.50);
    out.latency_p99_ms = util::Quantile(latency_window_, 0.99);
  }
  return out;
}

}  // namespace agsc::core
