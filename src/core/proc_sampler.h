#ifndef AGSC_CORE_PROC_SAMPLER_H_
#define AGSC_CORE_PROC_SAMPLER_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/vec_sampler.h"
#include "core/worker_protocol.h"
#include "env/sc_env.h"
#include "util/ipc.h"
#include "util/net.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/subprocess.h"

namespace agsc::core {

/// Thrown when a rollout worker subprocess could not be kept alive: the
/// respawn budget (ProcSampler::Options::max_respawns) was exhausted, or a
/// fresh spawn never produced a valid handshake. The trainer maps this to
/// util::kExitWorkerFailed; anything short of it is absorbed invisibly by
/// respawn-and-replay.
class ProcWorkerError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Crash-isolated counterpart of VecSampler: N agsc_worker processes, each
/// owning one environment replica in its own address space, driven in
/// lock-step over checksummed frames (core/worker_protocol). Two
/// transports, one protocol:
///  * local (`--proc-workers N`): fork/exec subprocesses over stdin/stdout
///    pipes. A worker that dies, hangs past the step deadline, or emits a
///    damaged frame is SIGKILLed and respawned with bounded backoff.
///  * remote (`--remote-workers N` + Options::listen_address): the sampler
///    listens on TCP (util/net) and `agsc_worker --connect` processes —
///    possibly on other hosts — claim worker slots via kMsgRegister. The
///    SIGKILL-respawn path generalizes to disconnect-reconnect: any fault
///    drops the connection and the worker's next registration resumes the
///    slot.
/// Either way the failed shard is replayed deterministically from its
/// recorded episode-start RNG state plus the actions already issued — the
/// final buffers and checkpoints are byte-identical to the fault-free run.
///
/// Bit-exactness contract (pinned by proc_sampler_test and the chaos
/// campaign): `--proc-workers N` and `--remote-workers N` produce rollout
/// buffers, metrics, and checkpoints bit-identical to `--num-workers N`
/// for the same seed. The pieces that make this hold:
///  * identical RNG stream layout — worker w > 0 samples from
///    Rng(seed).Split(2w) (trainer-side) and steps its env from
///    Rng(seed).Split(2w+1) (worker-side, mirrored here); worker 0 aliases
///    the primary trainer/env streams, so oracle checks and checkpoint
///    save/load see the exact same streams as the in-process sampler;
///  * action selection stays on the trainer: the same batched BatchActFn
///    over the same rows in the same worker order, so every FP operation
///    is literally the same computation;
///  * floats cross the pipe as raw bit patterns, and results merge in
///    worker-index order, independent of arrival timing.
///
/// Unlike VecSampler's fail-fast watchdog (a hung in-process worker can be
/// mid-write anywhere in the shared address space), a ProcSampler timeout
/// is recoverable: the straggler owns nothing but its own replica, so it is
/// killed and replayed like any other crash.
class ProcSampler {
 public:
  using BatchActFn = VecSampler::BatchActFn;

  struct Options {
    /// Path to the agsc_worker binary. Required in local mode; unused when
    /// listen_address is set (remote workers are launched externally).
    std::string worker_binary;
    /// Deadline per result-frame read AND per frame write in ms; 0 = block
    /// forever (a hung worker then hangs collection, exactly like a
    /// watchdog-less VecSampler). A bounded write matters as much as a
    /// bounded read: a peer that stops draining its pipe/socket would
    /// otherwise wedge the trainer's send path with no watchdog in front
    /// of it. Settable later via set_step_deadline_ms.
    long step_deadline_ms = 0;
    /// Backoff schedule between respawn/re-attach attempts of the same
    /// worker.
    util::RetryPolicy respawn_backoff;
    /// Total respawns tolerated per Collect() call before giving up with
    /// ProcWorkerError.
    int max_respawns = 8;
    /// Remote mode: "HOST:PORT" to listen on (port 0 = kernel-assigned,
    /// see bound_port()). Empty = local fork/exec mode. The listener is
    /// bound in the constructor (NetError on failure) so callers can
    /// publish the port before workers exist.
    std::string listen_address;
    /// Remote mode: budget for one worker registration + init/hello
    /// handshake (covers the reconnect-after-drop latency of a worker
    /// replaying a long episode prefix too).
    long handshake_timeout_ms = 60000;
    /// Test hook: shrink each worker transport's send buffer to roughly
    /// this many bytes (F_SETPIPE_SZ on pipes, SO_SNDBUF on sockets; the
    /// kernel clamps to a page / doubles respectively). 0 = OS default.
    /// Makes the write-stall fault reachable with small frames.
    int send_buffer_bytes = 0;
  };

  /// `num_workers` and `seed` define the RNG stream layout exactly as in
  /// VecSampler(primary_env, primary_rng, num_workers, seed). Workers are
  /// spawned lazily on first Collect(), so constructing a trainer (for
  /// checkpoint surgery, tests, --iterations 0 runs) costs no processes.
  ProcSampler(env::ScEnv& primary_env, util::Rng& primary_rng,
              int num_workers, uint64_t seed, Options options);
  ~ProcSampler();

  ProcSampler(const ProcSampler&) = delete;
  ProcSampler& operator=(const ProcSampler&) = delete;

  /// Collects `episodes` episodes through the worker fleet into `buffer` /
  /// `metrics`, dealing episodes round-robin across workers — the same
  /// schedule, stream use, and merge order as VecSampler::Collect. Throws
  /// util::InterruptedError on a stop request and ProcWorkerError when the
  /// respawn budget runs out.
  void Collect(int episodes, const BatchActFn& act, MultiAgentBuffer& buffer,
               std::vector<env::Metrics>& metrics);

  void set_stop_check(std::function<bool()> stop_check) {
    stop_check_ = std::move(stop_check);
  }
  void set_step_deadline_ms(long deadline_ms) {
    options_.step_deadline_ms = deadline_ms;
  }

  int num_workers() const { return num_workers_; }

  /// Trainer-side sampling stream of worker `w` (0 = the primary rng).
  util::Rng& sample_rng(int w);

  /// Extra per-worker streams in checkpoint order, identical to
  /// VecSampler::SplitRngs(): [sample_1, env_1, sample_2, env_2, ...].
  /// The env entries are the trainer-side mirrors of the workers' states;
  /// loading into them redirects the next episode prefix.
  std::vector<util::Rng*> SplitRngs();

  /// Sticky: every later episode prefix tells its worker to run the naive
  /// linear-scan environment (the oracle-fallback path). The primary env is
  /// the trainer's to downgrade.
  void DisableSpatialIndex() { naive_env_ = true; }

  /// Sticky: every later episode prefix tells its worker to run the scalar
  /// per-link channel path (the batched-channel oracle fallback).
  void DisableChannelBatch() { scalar_channel_ = true; }

  /// Total worker respawns over this sampler's lifetime (tests/stats).
  int respawn_count() const { return lifetime_respawns_; }

  /// Remote mode only: the TCP port workers must --connect to (resolves a
  /// port-0 listen_address); 0 in local mode.
  int bound_port() const { return listener_.bound_port(); }
  bool remote() const { return !options_.listen_address.empty(); }

 private:
  struct Worker {
    util::Subprocess proc;               ///< Local mode only.
    int fd = -1;                         ///< Remote mode only: the socket.
    std::unique_ptr<util::FrameReader> reader;
    std::unique_ptr<util::FrameWriter> writer;
    uint64_t out_seq = 0;
    int incarnation = -1;  ///< Spawn/attach count - 1; -1 = never spawned.
    bool connected = false;
  };

  /// A remote worker that registered while we were attaching a different
  /// slot; claimed (fd + reader mid-stream) when its slot spawns.
  struct PendingConn {
    int fd = -1;
    std::unique_ptr<util::FrameReader> reader;
  };

  util::Rng& env_stream(int w);

  /// Brings worker `w` up with retry/backoff: fork/exec (local) or claim a
  /// registration (remote), then the kMsgInit/kMsgHello handshake. Throws
  /// ProcWorkerError when the worker cannot be brought up at all.
  void SpawnWorker(int w);
  /// Local: fork/exec + pipe setup. False on failure.
  bool SpawnLocal(int w);
  /// Remote: claim worker w's registration — parked or freshly accepted
  /// within the handshake budget; registrations for other slots are parked
  /// (latest wins). False on timeout/listener failure.
  bool AttachRemote(int w);
  /// kMsgInit -> kMsgHello handshake + dims validation over the already-
  /// attached transport. False (transport torn down) on any mismatch.
  bool Handshake(int w);
  /// Tears down worker w's transport: reap the subprocess (local) or
  /// shutdown+close the socket (remote, the worker sees EOF and
  /// reconnects); resets reader/writer/seq state.
  void ResetTransport(Worker& wk);
  /// ResetTransport + count one respawn against the Collect budget (throws
  /// ProcWorkerError when it is exhausted) + backoff sleep.
  void FailWorker(int w, const std::string& why);

  /// Blocks until worker `w` delivers one valid result for its pending
  /// request. Never returns a damaged or out-of-order frame: any fault —
  /// EOF, timeout, checksum/sequence/shape mismatch — runs through
  /// FailWorker + SpawnWorker + a prefix that replays the episode so far,
  /// and the loop re-reads until a valid result arrives or the budget
  /// throws. On success the worker's env-stream mirror is updated.
  WorkerStepResult AwaitResult(int w);

  bool SendPrefix(int w);
  bool SendStep(int w, const WorkerActions& actions);
  /// Reads one kMsgStepResult with `timeout_ms`, decodes and shape-checks
  /// it; false on any fault (timeout, EOF, corruption, wrong type/shape).
  bool ReadResult(int w, long timeout_ms, WorkerStepResult& out,
                  std::string* why);

  /// Options::step_deadline_ms translated to the IPC sentinel (0 = "block
  /// forever" becomes -1); bounds every steady-state frame write.
  long write_timeout_ms() const {
    return options_.step_deadline_ms > 0 ? options_.step_deadline_ms : -1;
  }

  env::ScEnv& primary_env_;
  util::Rng& primary_rng_;
  const int num_workers_;
  Options options_;
  std::function<bool()> stop_check_;

  util::TcpListener listener_;                    ///< Remote mode only.
  std::unordered_map<int, PendingConn> parked_;   ///< Remote mode only.

  std::vector<util::Rng> sample_rngs_;  ///< Workers 1..W-1.
  std::vector<util::Rng> env_mirrors_;  ///< Workers 1..W-1 (0 = env_.rng()).
  std::vector<Worker> workers_;

  /// Per-worker episode replay state: the env-RNG state the running episode
  /// started from and every action issued since.
  std::vector<std::array<uint64_t, util::Rng::kStateWords>> episode_rng_;
  std::vector<std::vector<WorkerActions>> replay_log_;
  std::vector<int> consecutive_failures_;
  /// 1 while worker w's pending reply answers an episode prefix (reset or
  /// crash replay) rather than a single step — prefix replies get a larger
  /// read deadline covering env rebuild + replay.
  std::vector<uint8_t> pending_prefix_;

  bool naive_env_ = false;
  bool scalar_channel_ = false;
  int collect_respawns_ = 0;
  int lifetime_respawns_ = 0;
};

}  // namespace agsc::core

#endif  // AGSC_CORE_PROC_SAMPLER_H_
