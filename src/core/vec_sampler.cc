#include "core/vec_sampler.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "util/fault_inject.h"
#include "util/shutdown.h"

namespace agsc::core {

namespace {
// Stream ids for Rng(seed).Split(): worker w > 0 draws its sampling stream
// from id 2w and its environment stream from id 2w+1. Worker 0 uses the
// primary streams and owns no split ids.
uint64_t SampleStreamId(int w) { return 2 * static_cast<uint64_t>(w); }
uint64_t EnvStreamId(int w) { return 2 * static_cast<uint64_t>(w) + 1; }
}  // namespace

VecSampler::VecSampler(env::ScEnv& primary_env, util::Rng& primary_rng,
                       int num_workers, uint64_t seed)
    : primary_env_(primary_env),
      primary_rng_(primary_rng),
      num_workers_(num_workers),
      // With one worker the pool runs inline on the caller's thread: the
      // single-worker path adds no threads and no handoff overhead.
      pool_(num_workers > 1 ? num_workers : 0) {
  if (num_workers < 1) {
    throw std::invalid_argument("VecSampler: num_workers must be >= 1");
  }
  const util::Rng base(seed);
  replica_rngs_.reserve(static_cast<size_t>(num_workers - 1));
  for (int w = 1; w < num_workers; ++w) {
    replica_envs_.push_back(std::make_unique<env::ScEnv>(primary_env));
    replica_envs_.back()->rng() = base.Split(EnvStreamId(w));
    replica_rngs_.push_back(base.Split(SampleStreamId(w)));
  }
}

VecSampler::~VecSampler() = default;

util::Rng& VecSampler::sample_rng(int w) {
  return w == 0 ? primary_rng_ : replica_rngs_[static_cast<size_t>(w - 1)];
}

env::ScEnv& VecSampler::worker_env(int w) {
  return w == 0 ? primary_env_ : *replica_envs_[static_cast<size_t>(w - 1)];
}

std::vector<util::Rng*> VecSampler::SplitRngs() {
  std::vector<util::Rng*> rngs;
  rngs.reserve(2 * replica_rngs_.size());
  for (int w = 1; w < num_workers_; ++w) {
    rngs.push_back(&replica_rngs_[static_cast<size_t>(w - 1)]);
    rngs.push_back(&replica_envs_[static_cast<size_t>(w - 1)]->rng());
  }
  return rngs;
}

namespace {

// Worker-local collection state. Held behind a shared_ptr that every pool
// task co-owns: if a watchdog deadline expires while a task is hung, Collect
// throws and unwinds, but the straggler may still resume and finish its
// writes — they must land in storage that outlives the call frame.
struct CollectState {
  std::vector<MultiAgentBuffer> wbufs;
  std::vector<std::vector<env::Metrics>> wmetrics;
  // `cur`/`nxt` are double-buffered StepResults: each step writes into
  // nxt[w] (reusing its storage via the out-param Step) and then swaps, so
  // the steady-state loop performs no per-step allocation inside the
  // environment. Element w is only touched by worker w's tasks (or the
  // caller's thread between ParallelFor barriers).
  std::vector<env::StepResult> cur;
  std::vector<env::StepResult> nxt;
  std::vector<std::vector<env::UvAction>> actions;
  std::vector<std::vector<std::array<float, 2>>> raw;
  std::vector<std::vector<float>> logps;
  std::vector<uint8_t> running;
  std::vector<int> run_ids;

  CollectState(int w_count, int num_agents)
      : wmetrics(static_cast<size_t>(w_count)),
        cur(static_cast<size_t>(w_count)),
        nxt(static_cast<size_t>(w_count)),
        actions(static_cast<size_t>(w_count),
                std::vector<env::UvAction>(static_cast<size_t>(num_agents))),
        raw(static_cast<size_t>(w_count),
            std::vector<std::array<float, 2>>(
                static_cast<size_t>(num_agents))),
        logps(static_cast<size_t>(w_count),
              std::vector<float>(static_cast<size_t>(num_agents))) {
    wbufs.reserve(static_cast<size_t>(w_count));
    for (int w = 0; w < w_count; ++w) wbufs.emplace_back(num_agents);
  }
};

// Re-throws a pool-level watchdog timeout with sampler context: which
// worker's environment was stuck and at which timeslot of which round.
[[noreturn]] void RethrowWithContext(const util::WatchdogTimeoutError& e,
                                     const char* phase, int worker, int round,
                                     int timeslot) {
  std::ostringstream msg;
  msg << "rollout watchdog: worker " << worker << " stalled in " << phase
      << " (round " << round << ", timeslot " << timeslot << "): " << e.what();
  throw util::WatchdogTimeoutError(msg.str(), e.task_index(), e.task_started(),
                                   e.elapsed_ms(), e.deadline_ms());
}

}  // namespace

void VecSampler::Collect(int episodes, const BatchActFn& act,
                         MultiAgentBuffer& buffer,
                         std::vector<env::Metrics>& metrics) {
  if (episodes <= 0) return;
  const int num_agents = primary_env_.num_agents();
  const int w_count = num_workers_;

  // Worker-local outputs and step scratch; merged in worker-index order at
  // the end so the result never depends on pool scheduling. See CollectState
  // for why this lives behind a shared_ptr.
  auto st = std::make_shared<CollectState>(w_count, num_agents);

  // Reusable scratch for the batched action calls — caller-thread only, so
  // it can stay on the stack.
  std::vector<const std::vector<float>*> rows;
  std::vector<util::Rng*> rngs;
  std::vector<std::array<float, 2>> batch_actions;
  std::vector<float> batch_logps;

  const auto check_stop = [&](int round, int timeslot) {
    if (stop_check_ && stop_check_()) {
      std::ostringstream msg;
      msg << "rollout interrupted by stop request (round " << round
          << ", timeslot " << timeslot << "); partial episodes discarded";
      throw util::InterruptedError(msg.str());
    }
  };

  // Episodes are dealt round-robin, so each round's active workers form a
  // prefix 0..active-1 of the worker indices.
  const int rounds = (episodes + w_count - 1) / w_count;
  for (int r = 0; r < rounds; ++r) {
    check_stop(r, 0);
    const int active = std::min(w_count, episodes - r * w_count);
    try {
      pool_.ParallelFor(
          active, [this, st](int w) { worker_env(w).Reset(st->cur[w]); },
          step_deadline_ms_);
    } catch (const util::WatchdogTimeoutError& e) {
      RethrowWithContext(e, "Reset", e.task_index(), r, 0);
    }

    st->running.assign(static_cast<size_t>(active), 1);
    int num_running = active;
    int timeslot = 0;
    while (num_running > 0) {
      check_stop(r, timeslot);
      st->run_ids.clear();
      for (int w = 0; w < active; ++w) {
        if (st->running[static_cast<size_t>(w)]) st->run_ids.push_back(w);
      }

      // Batched action selection on the caller's thread: one forward per
      // agent covering all running workers, each row sampled from its own
      // worker stream in ascending worker order.
      for (int k = 0; k < num_agents; ++k) {
        rows.clear();
        rngs.clear();
        for (int w : st->run_ids) {
          rows.push_back(&st->cur[w].observations[static_cast<size_t>(k)]);
          rngs.push_back(&sample_rng(w));
        }
        batch_actions.assign(st->run_ids.size(), {});
        batch_logps.assign(st->run_ids.size(), 0.0f);
        act(k, rows, rngs, batch_actions, batch_logps);
        for (size_t i = 0; i < st->run_ids.size(); ++i) {
          const int w = st->run_ids[i];
          st->raw[w][static_cast<size_t>(k)] = batch_actions[i];
          st->logps[w][static_cast<size_t>(k)] = batch_logps[i];
          st->actions[w][static_cast<size_t>(k)] = {batch_actions[i][0],
                                                    batch_actions[i][1]};
        }
      }

      // Parallel environment steps. Every write below is to worker-local
      // state, so the outcome is independent of which pool thread runs
      // which worker.
      const auto step_task = [this, st, num_agents](int i) {
        const long stall = util::FaultInjector::Instance().NextStallMs();
        if (stall > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(stall));
        }
        const int w = st->run_ids[static_cast<size_t>(i)];
        env::ScEnv& e = worker_env(w);
        e.Step(st->actions[w], st->nxt[w]);
        const env::StepResult& next = st->nxt[w];
        MultiAgentBuffer& b = st->wbufs[static_cast<size_t>(w)];
        for (int k = 0; k < num_agents; ++k) {
          AgentRollout& ar = b.agents[static_cast<size_t>(k)];
          ar.obs.push_back(st->cur[w].observations[static_cast<size_t>(k)]);
          ar.next_obs.push_back(next.observations[static_cast<size_t>(k)]);
          ar.action_dir.push_back(st->raw[w][static_cast<size_t>(k)][0]);
          ar.action_speed.push_back(st->raw[w][static_cast<size_t>(k)][1]);
          ar.logp_old.push_back(st->logps[w][static_cast<size_t>(k)]);
          ar.reward_ext.push_back(
              static_cast<float>(next.rewards[static_cast<size_t>(k)]));
          ar.he_neighbors.push_back(e.HeterogeneousNeighbors(k));
          ar.ho_neighbors.push_back(e.HomogeneousNeighbors(k));
          ar.done.push_back(next.done ? 1 : 0);
        }
        b.states.push_back(st->cur[w].state);
        b.next_states.push_back(next.state);
        b.done.push_back(next.done ? 1 : 0);
        const bool episode_done = next.done;
        // Promote next -> cur; the displaced buffers become next step's
        // scratch, so their capacity is reused instead of reallocated.
        std::swap(st->cur[w], st->nxt[w]);
        if (episode_done) {
          st->wmetrics[static_cast<size_t>(w)].push_back(e.EpisodeMetrics());
          st->running[static_cast<size_t>(w)] = 0;
        }
      };
      try {
        pool_.ParallelFor(static_cast<int>(st->run_ids.size()), step_task,
                          step_deadline_ms_);
      } catch (const util::WatchdogTimeoutError& e) {
        const int w = st->run_ids[static_cast<size_t>(e.task_index())];
        RethrowWithContext(e, "Step", w, r, timeslot);
      }

      num_running = 0;
      for (uint8_t flag : st->running) num_running += flag != 0 ? 1 : 0;
      ++timeslot;
    }
  }

  for (int w = 0; w < w_count; ++w) {
    buffer.Append(st->wbufs[static_cast<size_t>(w)]);
    metrics.insert(metrics.end(), st->wmetrics[static_cast<size_t>(w)].begin(),
                   st->wmetrics[static_cast<size_t>(w)].end());
  }
}

}  // namespace agsc::core
