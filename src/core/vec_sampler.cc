#include "core/vec_sampler.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace agsc::core {

namespace {
// Stream ids for Rng(seed).Split(): worker w > 0 draws its sampling stream
// from id 2w and its environment stream from id 2w+1. Worker 0 uses the
// primary streams and owns no split ids.
uint64_t SampleStreamId(int w) { return 2 * static_cast<uint64_t>(w); }
uint64_t EnvStreamId(int w) { return 2 * static_cast<uint64_t>(w) + 1; }
}  // namespace

VecSampler::VecSampler(env::ScEnv& primary_env, util::Rng& primary_rng,
                       int num_workers, uint64_t seed)
    : primary_env_(primary_env),
      primary_rng_(primary_rng),
      num_workers_(num_workers),
      // With one worker the pool runs inline on the caller's thread: the
      // single-worker path adds no threads and no handoff overhead.
      pool_(num_workers > 1 ? num_workers : 0) {
  if (num_workers < 1) {
    throw std::invalid_argument("VecSampler: num_workers must be >= 1");
  }
  const util::Rng base(seed);
  replica_rngs_.reserve(static_cast<size_t>(num_workers - 1));
  for (int w = 1; w < num_workers; ++w) {
    replica_envs_.push_back(std::make_unique<env::ScEnv>(primary_env));
    replica_envs_.back()->rng() = base.Split(EnvStreamId(w));
    replica_rngs_.push_back(base.Split(SampleStreamId(w)));
  }
}

VecSampler::~VecSampler() = default;

util::Rng& VecSampler::sample_rng(int w) {
  return w == 0 ? primary_rng_ : replica_rngs_[static_cast<size_t>(w - 1)];
}

env::ScEnv& VecSampler::worker_env(int w) {
  return w == 0 ? primary_env_ : *replica_envs_[static_cast<size_t>(w - 1)];
}

std::vector<util::Rng*> VecSampler::SplitRngs() {
  std::vector<util::Rng*> rngs;
  rngs.reserve(2 * replica_rngs_.size());
  for (int w = 1; w < num_workers_; ++w) {
    rngs.push_back(&replica_rngs_[static_cast<size_t>(w - 1)]);
    rngs.push_back(&replica_envs_[static_cast<size_t>(w - 1)]->rng());
  }
  return rngs;
}

void VecSampler::Collect(int episodes, const BatchActFn& act,
                         MultiAgentBuffer& buffer,
                         std::vector<env::Metrics>& metrics) {
  if (episodes <= 0) return;
  const int num_agents = primary_env_.num_agents();
  const int w_count = num_workers_;

  // Worker-local outputs; merged in worker-index order at the end so the
  // result never depends on pool scheduling.
  std::vector<MultiAgentBuffer> wbufs;
  wbufs.reserve(static_cast<size_t>(w_count));
  for (int w = 0; w < w_count; ++w) wbufs.emplace_back(num_agents);
  std::vector<std::vector<env::Metrics>> wmetrics(w_count);

  // Worker-local step state; element w is only touched by worker w's tasks
  // (or the main thread between ParallelFor barriers). `cur`/`nxt` are
  // double-buffered StepResults: each step writes into nxt[w] (reusing its
  // storage via the out-param Step) and then swaps, so the steady-state
  // loop performs no per-step allocation inside the environment.
  std::vector<env::StepResult> cur(w_count);
  std::vector<env::StepResult> nxt(w_count);
  std::vector<std::vector<env::UvAction>> actions(
      w_count, std::vector<env::UvAction>(num_agents));
  std::vector<std::vector<std::array<float, 2>>> raw(
      w_count, std::vector<std::array<float, 2>>(num_agents));
  std::vector<std::vector<float>> logps(
      w_count, std::vector<float>(num_agents));

  // Reusable scratch for the batched action calls.
  std::vector<const std::vector<float>*> rows;
  std::vector<util::Rng*> rngs;
  std::vector<std::array<float, 2>> batch_actions;
  std::vector<float> batch_logps;
  std::vector<int> run_ids;

  // Episodes are dealt round-robin, so each round's active workers form a
  // prefix 0..active-1 of the worker indices.
  const int rounds = (episodes + w_count - 1) / w_count;
  for (int r = 0; r < rounds; ++r) {
    const int active = std::min(w_count, episodes - r * w_count);
    pool_.ParallelFor(active, [&](int w) { worker_env(w).Reset(cur[w]); });

    std::vector<uint8_t> running(static_cast<size_t>(active), 1);
    int num_running = active;
    while (num_running > 0) {
      run_ids.clear();
      for (int w = 0; w < active; ++w) {
        if (running[static_cast<size_t>(w)]) run_ids.push_back(w);
      }

      // Batched action selection on the caller's thread: one forward per
      // agent covering all running workers, each row sampled from its own
      // worker stream in ascending worker order.
      for (int k = 0; k < num_agents; ++k) {
        rows.clear();
        rngs.clear();
        for (int w : run_ids) {
          rows.push_back(&cur[w].observations[static_cast<size_t>(k)]);
          rngs.push_back(&sample_rng(w));
        }
        batch_actions.assign(run_ids.size(), {});
        batch_logps.assign(run_ids.size(), 0.0f);
        act(k, rows, rngs, batch_actions, batch_logps);
        for (size_t i = 0; i < run_ids.size(); ++i) {
          const int w = run_ids[i];
          raw[w][static_cast<size_t>(k)] = batch_actions[i];
          logps[w][static_cast<size_t>(k)] = batch_logps[i];
          actions[w][static_cast<size_t>(k)] = {batch_actions[i][0],
                                                batch_actions[i][1]};
        }
      }

      // Parallel environment steps. Every write below is to worker-local
      // state, so the outcome is independent of which pool thread runs
      // which worker.
      pool_.ParallelFor(static_cast<int>(run_ids.size()), [&](int i) {
        const int w = run_ids[static_cast<size_t>(i)];
        env::ScEnv& e = worker_env(w);
        e.Step(actions[w], nxt[w]);
        const env::StepResult& next = nxt[w];
        MultiAgentBuffer& b = wbufs[static_cast<size_t>(w)];
        for (int k = 0; k < num_agents; ++k) {
          AgentRollout& ar = b.agents[static_cast<size_t>(k)];
          ar.obs.push_back(cur[w].observations[static_cast<size_t>(k)]);
          ar.next_obs.push_back(next.observations[static_cast<size_t>(k)]);
          ar.action_dir.push_back(raw[w][static_cast<size_t>(k)][0]);
          ar.action_speed.push_back(raw[w][static_cast<size_t>(k)][1]);
          ar.logp_old.push_back(logps[w][static_cast<size_t>(k)]);
          ar.reward_ext.push_back(
              static_cast<float>(next.rewards[static_cast<size_t>(k)]));
          ar.he_neighbors.push_back(e.HeterogeneousNeighbors(k));
          ar.ho_neighbors.push_back(e.HomogeneousNeighbors(k));
          ar.done.push_back(next.done ? 1 : 0);
        }
        b.states.push_back(cur[w].state);
        b.next_states.push_back(next.state);
        b.done.push_back(next.done ? 1 : 0);
        const bool episode_done = next.done;
        // Promote next -> cur; the displaced buffers become next step's
        // scratch, so their capacity is reused instead of reallocated.
        std::swap(cur[w], nxt[w]);
        if (episode_done) {
          wmetrics[static_cast<size_t>(w)].push_back(e.EpisodeMetrics());
          running[static_cast<size_t>(w)] = 0;
        }
      });

      num_running = 0;
      for (uint8_t flag : running) num_running += flag != 0 ? 1 : 0;
    }
  }

  for (int w = 0; w < w_count; ++w) {
    buffer.Append(wbufs[static_cast<size_t>(w)]);
    metrics.insert(metrics.end(), wmetrics[static_cast<size_t>(w)].begin(),
                   wmetrics[static_cast<size_t>(w)].end());
  }
}

}  // namespace agsc::core
