// Design-choice ablation (DESIGN.md decision: the paper's one-step TD
// advantage, Eqn. 24, vs the GAE alternative exposed by
// TrainConfig::gae_lambda). Compares training quality of h/i-MADRL under
// both estimators at the same budget.

#include <iostream>

#include "bench/bench_common.h"
#include "core/evaluator.h"

int main() {
  using namespace agsc;
  const bench::Settings settings = bench::Settings::FromEnv();
  bench::PrintBanner("Ablation - advantage estimator (one-step vs GAE)",
                     settings);

  struct Estimator {
    const char* name;
    float gae_lambda;  // <0 = paper's one-step.
  };
  const std::vector<Estimator> estimators = {
      {"one-step TD (paper, Eqn. 24)", -1.0f},
      {"GAE lambda=0.5", 0.5f},
      {"GAE lambda=0.95", 0.95f},
  };

  util::CsvWriter csv(bench::OutDir() + "/ablation_advantage.csv",
                      {"campus", "estimator", "lambda"});
  util::Table table({"advantage estimator", "lambda (Purdue)",
                     "lambda (NCSU)"});
  for (const Estimator& est : estimators) {
    std::vector<double> lambdas;
    for (const map::CampusId campus :
         {map::CampusId::kPurdue, map::CampusId::kNcsu}) {
      env::EnvConfig config = bench::BaseEnvConfig(settings);
      core::TrainConfig train = bench::BaseTrainConfig(settings, 113);
      train.gae_lambda = est.gae_lambda;
      bench::TrainedHiMadrl run =
          bench::TrainHiMadrlVariant(config, campus, settings, train);
      const env::Metrics m =
          core::Evaluate(*run.env, *run.trainer, settings.eval_episodes, 13)
              .mean;
      lambdas.push_back(m.efficiency);
      std::cerr << "  [" << map::CampusName(campus) << "] " << est.name
                << ": lambda=" << util::FormatDouble(m.efficiency, 3)
                << "\n";
      csv.WriteRow({map::CampusName(campus), est.name,
                    util::FormatDouble(m.efficiency, 4)});
      csv.Flush();
    }
    table.AddRow(est.name, lambdas);
  }
  table.Print();
  return 0;
}
