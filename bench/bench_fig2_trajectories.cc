// Reproduces Fig. 2: trajectory patterns of the ablation variants on both
// campuses. Each variant is trained, then one deterministic evaluation
// episode is rendered as an ASCII map and dumped as CSV
// (bench_out/fig2_<campus>_<variant>.csv) for external plotting.

#include <iostream>

#include "bench/bench_common.h"
#include "core/evaluator.h"
#include "env/render.h"

int main() {
  using namespace agsc;
  const bench::Settings settings = bench::Settings::FromEnv();
  bench::PrintBanner("Fig. 2 - trajectory patterns over ablation", settings);

  struct Variant {
    const char* name;
    const char* slug;
    bool use_eoi;
    bool use_copo;
    bool hetero;
  };
  // The five panels per campus in Fig. 2 (IPPO == w/o both plug-ins).
  const std::vector<Variant> variants = {
      {"h/i-MADRL", "full", true, true, true},
      {"h/i-MADRL(CoPO)", "copo", true, true, false},
      {"h/i-MADRL w/o h-CoPO", "no_hcopo", true, false, true},
      {"h/i-MADRL w/o i-EOI", "no_ieoi", false, true, true},
      {"IPPO", "ippo", false, false, true},
  };

  for (const map::CampusId campus :
       {map::CampusId::kPurdue, map::CampusId::kNcsu}) {
    for (const Variant& variant : variants) {
      env::EnvConfig env_config = bench::BaseEnvConfig(settings);
      core::TrainConfig train = bench::BaseTrainConfig(settings, 71);
      train.use_eoi = variant.use_eoi;
      train.use_copo = variant.use_copo;
      train.hetero_copo = variant.hetero;
      bench::TrainedHiMadrl run =
          bench::TrainHiMadrlVariant(env_config, campus, settings, train);
      // One deterministic episode to produce the trajectory panel.
      core::Evaluate(*run.env, *run.trainer, 1, 55);
      const env::Metrics m = run.env->EpisodeMetrics();
      std::cout << "\n[" << map::CampusName(campus) << "] " << variant.name
                << "  (psi=" << util::FormatDouble(m.data_collection_ratio, 3)
                << ", lambda=" << util::FormatDouble(m.efficiency, 3)
                << ")\n"
                << env::RenderTrajectoriesAscii(*run.env, 64, 24);
      const std::string base = bench::OutDir() + "/fig2_" +
                               map::CampusName(campus) + "_" + variant.slug;
      env::DumpTrajectoriesCsv(*run.env, base + ".csv");
      env::RenderTrajectoriesSvg(*run.env, base + ".svg");
    }
  }
  std::cout << "\nTrajectory CSVs + SVGs written under " << bench::OutDir()
            << "/fig2_*.{csv,svg}\n"
            << "Paper shape: the full model divides the area among UVs; the "
               "CoPO variant leaves UGVs away from UAVs; removing i-EOI "
               "collapses UVs onto similar areas around the spawn point.\n";
  return 0;
}
