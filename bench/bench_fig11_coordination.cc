// Reproduces Fig. 11: (a,b) UAV-UGV coordination along one episode —
// timeslot snapshots of positions plus the relay events between pairs —
// and (d) the learned mean LCF values (phi, chi) per UV kind.

#include <iostream>

#include "bench/bench_common.h"
#include "core/evaluator.h"
#include "env/render.h"

int main() {
  using namespace agsc;
  const bench::Settings settings = bench::Settings::FromEnv();
  bench::PrintBanner("Fig. 11 - UV coordination & learned LCFs", settings);

  for (const map::CampusId campus :
       {map::CampusId::kPurdue, map::CampusId::kNcsu}) {
    env::EnvConfig env_config = bench::BaseEnvConfig(settings);
    core::TrainConfig train = bench::BaseTrainConfig(settings, 83);
    bench::TrainedHiMadrl run =
        bench::TrainHiMadrlVariant(env_config, campus, settings, train);
    core::Evaluate(*run.env, *run.trainer, 1, 29);

    std::cout << "\n--- " << map::CampusName(campus)
              << ": coordination snapshots ---\n";
    const auto& trajectories = run.env->trajectories();
    const int T = env_config.num_timeslots;
    for (int t : {T / 20, T / 4, 3 * T / 4, T}) {
      std::cout << "timeslot " << t << ":";
      for (int k = 0; k < run.env->num_agents(); ++k) {
        const map::Point2 p = trajectories[k][t];
        std::cout << "  " << (run.env->IsUav(k) ? "UAV" : "UGV") << k << "=("
                  << util::FormatDouble(p.x, 0) << ","
                  << util::FormatDouble(p.y, 0) << ")";
      }
      std::cout << "\n";
    }

    // Relay-pair statistics: how often each UAV-UGV pair shared a
    // subchannel, and the mean UAV-UGV distance during relays (the paper's
    // "UGV stays besides the UAV to receive its relayed data").
    long relays = 0, losses = 0;
    double relay_dist = 0.0;
    const auto& log = run.env->event_log();
    for (size_t t = 0; t < log.size(); ++t) {
      for (const env::CollectionEvent& ev : log[t]) {
        if (ev.uav >= 0 && ev.ugv >= 0) {
          ++relays;
          relay_dist += map::Distance(trajectories[ev.uav][t + 1],
                                      trajectories[ev.ugv][t + 1]);
          losses += ev.loss_uav ? 1 : 0;
        }
      }
    }
    std::cout << "relay pairs: " << relays << ", mean UAV-UGV distance="
              << util::FormatDouble(relays ? relay_dist / relays : 0.0, 1)
              << " m, relay-chain losses=" << losses << "\n";
    env::DumpEventsCsv(*run.env, bench::OutDir() + "/fig11_" +
                                     map::CampusName(campus) +
                                     "_events.csv");

    // Fig. 11(d): mean learned LCFs per UV kind.
    double uav_phi = 0.0, uav_chi = 0.0, ugv_phi = 0.0, ugv_chi = 0.0;
    const int U = env_config.num_uavs, G = env_config.num_ugvs;
    for (int k = 0; k < run.env->num_agents(); ++k) {
      const core::Lcf& lcf = run.trainer->lcfs()[k];
      if (run.env->IsUav(k)) {
        uav_phi += lcf.phi_deg / U;
        uav_chi += lcf.chi_deg / U;
      } else {
        ugv_phi += lcf.phi_deg / G;
        ugv_chi += lcf.chi_deg / G;
      }
    }
    util::Table table({"UV kind (" + map::CampusName(campus) + ")",
                       "mean phi (deg)", "mean chi (deg)"});
    table.AddRow("UAV", {uav_phi, uav_chi});
    table.AddRow("UGV", {ugv_phi, ugv_chi});
    table.Print();
  }
  std::cout << "\nPaper shape: UGVs learn phi > UAVs' phi (UGVs cooperative "
               "mobile BSs, UAVs near-egoistic collectors, Fig. 11(d)).\n";
  return 0;
}
