// Reproduces Section VI-F's sample-complexity comparison: the number of
// environment samples h/i-MADRL vs MAPPO need before the policy-gradient
// norm E[||grad J||] drops below given epsilon targets. The paper reports
// h/i-MADRL reaching each target with substantially fewer samples.

#include <iostream>

#include "bench/bench_common.h"

int main() {
  using namespace agsc;
  const bench::Settings settings = bench::Settings::FromEnv();
  bench::PrintBanner("Section VI-F - sample complexity", settings);

  struct MethodSpec {
    const char* name;
    bool plugins;
  };
  const std::vector<MethodSpec> methods = {{"h/i-MADRL", true},
                                           {"MAPPO", false}};
  const std::vector<double> epsilons = settings.Sweep<double>(
      {0.7, 0.5}, {0.7, 0.6, 0.5, 0.4});

  util::CsvWriter csv(bench::OutDir() + "/sample_complexity.csv",
                      {"campus", "method", "iteration", "env_steps",
                       "grad_norm"});
  for (const map::CampusId campus :
       {map::CampusId::kPurdue, map::CampusId::kNcsu}) {
    util::Table table({"epsilon target (" + map::CampusName(campus) + ")",
                       "h/i-MADRL samples (k)", "MAPPO samples (k)"});
    std::vector<std::vector<long>> samples_to_target(
        methods.size(), std::vector<long>(epsilons.size(), -1));
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      env::EnvConfig env_config = bench::BaseEnvConfig(settings);
      core::TrainConfig train = bench::BaseTrainConfig(settings, 91);
      if (!methods[mi].plugins) {
        train.base = core::BaseAlgo::kMappo;
        train.use_eoi = false;
        train.use_copo = false;
      }
      const map::Dataset& dataset =
          bench::GetDataset(campus, env_config.num_pois);
      env::ScEnv env(env_config, dataset, 3);
      core::HiMadrlTrainer trainer(env, train);
      // Smoothed gradient norm over training; record first crossing of
      // each epsilon target.
      double smoothed = -1.0;
      for (int it = 0; it < settings.train_iterations; ++it) {
        const core::IterationStats stats = trainer.TrainIteration();
        smoothed = smoothed < 0.0
                       ? stats.actor_grad_norm
                       : 0.7 * smoothed + 0.3 * stats.actor_grad_norm;
        csv.WriteRow({map::CampusName(campus), methods[mi].name,
                      std::to_string(it),
                      std::to_string(stats.total_env_steps),
                      util::FormatDouble(smoothed, 4)});
        for (size_t ei = 0; ei < epsilons.size(); ++ei) {
          if (samples_to_target[mi][ei] < 0 && smoothed <= epsilons[ei]) {
            samples_to_target[mi][ei] = stats.total_env_steps;
          }
        }
      }
      csv.Flush();
      std::cerr << "  [" << map::CampusName(campus) << "] "
                << methods[mi].name << " final grad norm="
                << util::FormatDouble(smoothed, 3) << "\n";
    }
    for (size_t ei = 0; ei < epsilons.size(); ++ei) {
      auto cell = [&](size_t mi) {
        return samples_to_target[mi][ei] < 0
                   ? std::string("not reached")
                   : util::FormatDouble(
                         samples_to_target[mi][ei] / 1000.0, 1);
      };
      table.AddRow({util::FormatDouble(epsilons[ei], 2), cell(0), cell(1)});
    }
    table.Print();
    std::cout << "\n";
  }
  std::cout << "Paper shape: h/i-MADRL reaches each gradient-norm target "
               "with fewer samples than MAPPO.\n";
  return 0;
}
