// Microbenchmarks of the environment substrate: env step/reset with
// per-phase timings (MoveAgents / CollectData / BuildObservation), channel
// evaluation, road-graph queries (cached/indexed vs naive), the
// PathDistance-heavy UGV stepping path, and the GA tour planner.
//
// main() first runs a naive-vs-indexed self-check: every cached/indexed
// query must be bit-identical to its naive oracle on randomized inputs,
// and a full episode stepped with use_spatial_index on/off must produce
// identical StepResults. The process exits non-zero on any mismatch, so
// the ctest smoke run doubles as a CI equivalence check.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "algorithms/shortest_path.h"
#include "bench/bench_common.h"
#include "env/channel_batch.h"

namespace {

using namespace agsc;

const map::Dataset& Dataset100() {
  return bench::GetDataset(map::CampusId::kPurdue, 100);
}

env::ScEnv MakeEnv(bool indexed, int uavs = -1, int ugvs = -1,
                   bool batch_channel = true) {
  env::EnvConfig config;
  config.use_spatial_index = indexed;
  config.use_channel_batch = batch_channel;
  config.record_event_log = false;
  if (uavs >= 0) config.num_uavs = uavs;
  if (ugvs >= 0) config.num_ugvs = ugvs;
  return env::ScEnv(config, Dataset100(), 1);
}

void RandomActions(util::Rng& rng, std::vector<env::UvAction>& actions) {
  for (env::UvAction& a : actions) {
    a = {rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)};
  }
}

void BM_EnvReset(benchmark::State& state) {
  env::ScEnv env = MakeEnv(true);
  env::StepResult step;
  for (auto _ : state) {
    env.Reset(step);
    benchmark::DoNotOptimize(step.observations[0][0]);
  }
}
BENCHMARK(BM_EnvReset)->Unit(benchmark::kMicrosecond);

void EnvStep(benchmark::State& state, bool indexed) {
  env::ScEnv env = MakeEnv(indexed);
  env::StepResult step;
  env.Reset(step);
  util::Rng rng(2);
  std::vector<env::UvAction> actions(env.num_agents());
  for (auto _ : state) {
    if (env.timeslot() >= env.config().num_timeslots) env.Reset(step);
    RandomActions(rng, actions);
    env.Step(actions, step);
    benchmark::DoNotOptimize(step.rewards[0]);
  }
}
void BM_EnvStep(benchmark::State& state) { EnvStep(state, true); }
void BM_EnvStepNaive(benchmark::State& state) { EnvStep(state, false); }
BENCHMARK(BM_EnvStep)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_EnvStepNaive)->Unit(benchmark::kMicrosecond);

// --- Per-phase timings (through the ScEnvHotPathPeer backdoor). ---

void BM_EnvMoveAgents(benchmark::State& state) {
  env::ScEnv env = MakeEnv(true);
  env.Reset();
  util::Rng rng(3);
  std::vector<env::UvAction> actions(env.num_agents());
  std::vector<double> energy(env.num_agents(), 0.0);
  for (auto _ : state) {
    RandomActions(rng, actions);
    env::ScEnvHotPathPeer::MoveAgents(env, actions, energy);
    benchmark::DoNotOptimize(energy[0]);
  }
}
BENCHMARK(BM_EnvMoveAgents)->Unit(benchmark::kMicrosecond);

void EnvCollectData(benchmark::State& state, bool batch_channel) {
  env::ScEnv env = MakeEnv(true, -1, -1, batch_channel);
  env.Reset();
  std::vector<double> rewards(env.num_agents(), 0.0);
  std::vector<env::CollectionEvent> events;
  int calls = 0;
  for (auto _ : state) {
    // Refresh PoI data periodically so the collection never runs dry.
    if (++calls % 256 == 0) env.Reset();
    std::fill(rewards.begin(), rewards.end(), 0.0);
    env::ScEnvHotPathPeer::CollectData(env, rewards, events);
    benchmark::DoNotOptimize(rewards[0]);
  }
}
void BM_EnvCollectData(benchmark::State& state) {
  EnvCollectData(state, true);
}
void BM_EnvCollectDataScalarChannel(benchmark::State& state) {
  EnvCollectData(state, false);
}
BENCHMARK(BM_EnvCollectData)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_EnvCollectDataScalarChannel)->Unit(benchmark::kMicrosecond);

void BM_EnvBuildObservation(benchmark::State& state) {
  env::ScEnv env = MakeEnv(true);
  env.Reset();
  std::vector<float> obs;
  for (auto _ : state) {
    env.BuildObservation(0, &obs);
    benchmark::DoNotOptimize(obs[0]);
  }
}
BENCHMARK(BM_EnvBuildObservation)->Unit(benchmark::kMicrosecond);

// Observation build against PoI count, batched SoA sweep vs the scalar
// per-PoI path (--env-channel-scalar). The campus trace extractor yields at
// most ~1.1k distinct 60 m cells, so the env-level sweep stops at 1k; the
// 10k point is carried by the kernel-range cases below (BM_ObsVisible*,
// BM_ChannelGains*, BM_ChannelInterference*), which bench the same per-PoI
// math on synthetic layouts.
void EnvObsBuild(benchmark::State& state, bool batch_channel) {
  const int pois = static_cast<int>(state.range(0));
  env::EnvConfig config;
  config.num_pois = pois;
  config.use_channel_batch = batch_channel;
  config.record_event_log = false;
  env::ScEnv env(config, bench::GetDataset(map::CampusId::kPurdue, pois), 1);
  env.Reset();
  std::vector<float> obs;
  for (auto _ : state) {
    env.BuildObservation(0, &obs);
    benchmark::DoNotOptimize(obs[0]);
  }
}
void BM_EnvObsBuildBatch(benchmark::State& state) {
  EnvObsBuild(state, true);
}
void BM_EnvObsBuildScalarChannel(benchmark::State& state) {
  EnvObsBuild(state, false);
}
BENCHMARK(BM_EnvObsBuildBatch)
    ->Arg(100)->Arg(1000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_EnvObsBuildScalarChannel)
    ->Arg(100)->Arg(1000)->Unit(benchmark::kMicrosecond);

// Synthetic PoI layout shared by the kernel-range channel benches.
env::PoiSoa BenchSoa(int n, std::vector<map::Point2>& pts) {
  util::Rng rng(29);
  pts.resize(static_cast<size_t>(n));
  for (map::Point2& p : pts) {
    p = {rng.Uniform(0.0, 2000.0), rng.Uniform(0.0, 2000.0)};
  }
  env::PoiSoa soa;
  soa.Build(pts, n);
  return soa;
}

// The observation-build channel phase in isolation: the per-PoI visibility
// test over the whole PoI set, scalar map::Distance loop vs the vectorized
// VisibleMask kernel, at 100 / 1k / 10k PoIs.
void ObsVisible(benchmark::State& state, bool batch) {
  const int n = static_cast<int>(state.range(0));
  std::vector<map::Point2> pts;
  const env::PoiSoa soa = BenchSoa(n, pts);
  const map::Point2 pos{977.0, 1041.0};
  const double range = 600.0;
  std::vector<double> dist(static_cast<size_t>(n));
  std::vector<uint8_t> vis(static_cast<size_t>(n));
  for (auto _ : state) {
    if (batch) {
      env::VisibleMask(soa, pos, range, dist.data(), vis.data());
    } else {
      for (int i = 0; i < n; ++i) {
        vis[i] = map::Distance(pos, pts[i]) <= range ? 1 : 0;
      }
    }
    benchmark::DoNotOptimize(vis[0]);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
void BM_ObsVisibleScalar(benchmark::State& state) {
  ObsVisible(state, false);
}
void BM_ObsVisibleBatch(benchmark::State& state) { ObsVisible(state, true); }
BENCHMARK(BM_ObsVisibleScalar)
    ->Arg(100)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ObsVisibleBatch)
    ->Arg(100)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

void BM_ChannelAirLinkGain(benchmark::State& state) {
  env::EnvConfig config;
  env::ChannelModel channel(config);
  double x = 0.0;
  for (auto _ : state) {
    x += channel.AirLinkGain({x - std::floor(x), 200.0}, {500.0, 500.0},
                             60.0);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_ChannelAirLinkGain);

// --- Batched channel kernels vs the scalar ChannelModel oracle. ---
//
// The kernel-range cases isolate the CollectData channel phase: computing a
// whole gain vector (one receiver against every PoI) and folding it into an
// interference sum, at 100 / 1k / 10k PoIs. "Scalar" calls
// ChannelModel::AirLinkGain per PoI exactly as the pre-SoA env did; "Batch"
// is the bit-exact SIMD tier; "Fast" the --env-fast-math tier.

enum class GainTier { kScalar, kBatch, kFast };

void ChannelGainVector(benchmark::State& state, GainTier tier) {
  const int n = static_cast<int>(state.range(0));
  env::EnvConfig config;
  const env::ChannelModel model(config);
  const env::ChannelBatchParams params =
      env::ChannelBatchParams::FromConfig(config);
  std::vector<map::Point2> pts;
  const env::PoiSoa soa = BenchSoa(n, pts);
  const map::Point2 rx{977.0, 1041.0};
  std::vector<double> gains(static_cast<size_t>(n));
  for (auto _ : state) {
    switch (tier) {
      case GainTier::kScalar:
        for (int i = 0; i < n; ++i) {
          gains[i] = model.AirLinkGain(pts[i], rx, config.uav_height);
        }
        break;
      case GainTier::kBatch:
        env::AirGainsBatch(params, soa, nullptr, n, rx, config.uav_height,
                           gains.data());
        break;
      case GainTier::kFast:
        env::AirGainsFast(params, soa, nullptr, n, rx, config.uav_height,
                          gains.data());
        break;
    }
    benchmark::DoNotOptimize(gains[0]);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
void BM_ChannelGainsScalar(benchmark::State& state) {
  ChannelGainVector(state, GainTier::kScalar);
}
void BM_ChannelGainsBatch(benchmark::State& state) {
  ChannelGainVector(state, GainTier::kBatch);
}
void BM_ChannelGainsFast(benchmark::State& state) {
  ChannelGainVector(state, GainTier::kFast);
}
BENCHMARK(BM_ChannelGainsScalar)
    ->Arg(100)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ChannelGainsBatch)
    ->Arg(100)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ChannelGainsFast)
    ->Arg(100)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

// The acceptance case: one per-slot interference sum over every
// transmitting PoI — gains plus the ordered accumulation, scalar vs batch.
void ChannelInterference(benchmark::State& state, GainTier tier) {
  const int n = static_cast<int>(state.range(0));
  env::EnvConfig config;
  const env::ChannelModel model(config);
  const env::ChannelBatchParams params =
      env::ChannelBatchParams::FromConfig(config);
  std::vector<map::Point2> pts;
  const env::PoiSoa soa = BenchSoa(n, pts);
  std::vector<int> ids(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) ids[i] = i;
  const map::Point2 rx{977.0, 1041.0};
  std::vector<double> gains(static_cast<size_t>(n));
  for (auto _ : state) {
    double intf = 0.0;
    if (tier == GainTier::kScalar) {
      for (int i = 0; i < n; ++i) {
        if (i == 7) continue;
        intf += model.AirLinkGain(pts[i], rx, config.uav_height) *
                config.rho_poi_w;
      }
    } else {
      (tier == GainTier::kFast ? env::AirGainsFast : env::AirGainsBatch)(
          params, soa, nullptr, n, rx, config.uav_height, gains.data());
      intf = env::InterferencePower(gains.data(), ids.data(), n,
                                    config.rho_poi_w, 7, -1);
    }
    benchmark::DoNotOptimize(intf);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
void BM_ChannelInterferenceScalar(benchmark::State& state) {
  ChannelInterference(state, GainTier::kScalar);
}
void BM_ChannelInterferenceBatch(benchmark::State& state) {
  ChannelInterference(state, GainTier::kBatch);
}
void BM_ChannelInterferenceFast(benchmark::State& state) {
  ChannelInterference(state, GainTier::kFast);
}
BENCHMARK(BM_ChannelInterferenceScalar)
    ->Arg(100)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ChannelInterferenceBatch)
    ->Arg(100)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ChannelInterferenceFast)
    ->Arg(100)->Arg(1000)->Arg(10000)->Unit(benchmark::kMicrosecond);

// --- Road-graph queries: grid/cache vs naive oracle. ---

void RoadProject(benchmark::State& state, bool indexed) {
  const map::RoadGraph& roads = Dataset100().campus.roads;
  roads.EnsureCaches();
  util::Rng rng(3);
  for (auto _ : state) {
    const map::Point2 p{rng.Uniform(0.0, 2000.0), rng.Uniform(0.0, 2000.0)};
    benchmark::DoNotOptimize(
        (indexed ? roads.Project(p) : roads.ProjectNaive(p)).edge);
  }
}
void BM_RoadProject(benchmark::State& state) { RoadProject(state, true); }
void BM_RoadProjectNaive(benchmark::State& state) {
  RoadProject(state, false);
}
BENCHMARK(BM_RoadProject)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RoadProjectNaive)->Unit(benchmark::kMicrosecond);

void RoadPathDistance(benchmark::State& state, bool cached) {
  const map::RoadGraph& roads = Dataset100().campus.roads;
  roads.EnsureCaches();
  util::Rng rng(6);
  for (auto _ : state) {
    const map::RoadPosition a = roads.Project(
        {rng.Uniform(0.0, 2000.0), rng.Uniform(0.0, 2000.0)});
    const map::RoadPosition b = roads.Project(
        {rng.Uniform(0.0, 2000.0), rng.Uniform(0.0, 2000.0)});
    benchmark::DoNotOptimize(cached ? roads.PathDistance(a, b)
                                    : roads.PathDistanceNaive(a, b));
  }
}
void BM_RoadPathDistance(benchmark::State& state) {
  RoadPathDistance(state, true);
}
void BM_RoadPathDistanceNaive(benchmark::State& state) {
  RoadPathDistance(state, false);
}
BENCHMARK(BM_RoadPathDistance)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RoadPathDistanceNaive)->Unit(benchmark::kMicrosecond);

void RoadMoveToward(benchmark::State& state, bool indexed) {
  const map::RoadGraph& roads = Dataset100().campus.roads;
  roads.EnsureCaches();
  util::Rng rng(4);
  map::RoadPosition pos = roads.Project({1000.0, 1000.0});
  for (auto _ : state) {
    const map::Point2 target{rng.Uniform(0.0, 2000.0),
                             rng.Uniform(0.0, 2000.0)};
    pos = indexed ? roads.MoveToward(pos, target, 100.0)
                  : roads.MoveTowardNaive(pos, target, 100.0);
    benchmark::DoNotOptimize(pos.t);
  }
}
void BM_RoadMoveToward(benchmark::State& state) {
  RoadMoveToward(state, true);
}
void BM_RoadMoveTowardNaive(benchmark::State& state) {
  RoadMoveToward(state, false);
}
BENCHMARK(BM_RoadMoveToward)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RoadMoveTowardNaive)->Unit(benchmark::kMicrosecond);

// The acceptance benchmark: a UGV-only fleet, where every step pays for
// road projection + shortest-path routing per vehicle. Naive runs up to
// four Dijkstras plus an O(E) projection per UGV per slot; the cached path
// reduces that to table lookups plus a grid query.
void UgvStepping(benchmark::State& state, bool indexed) {
  env::ScEnv env = MakeEnv(indexed, /*uavs=*/0, /*ugvs=*/4);
  env::StepResult step;
  env.Reset(step);
  util::Rng rng(8);
  std::vector<env::UvAction> actions(env.num_agents());
  for (auto _ : state) {
    if (env.timeslot() >= env.config().num_timeslots) env.Reset(step);
    RandomActions(rng, actions);
    env.Step(actions, step);
    benchmark::DoNotOptimize(step.rewards[0]);
  }
}
void BM_UgvStepping(benchmark::State& state) { UgvStepping(state, true); }
void BM_UgvSteppingNaive(benchmark::State& state) {
  UgvStepping(state, false);
}
BENCHMARK(BM_UgvStepping)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_UgvSteppingNaive)->Unit(benchmark::kMicrosecond);

void BM_GaTourPlanning(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  std::vector<int> points(count);
  for (int i = 0; i < count; ++i) points[i] = i;
  const auto& pois = Dataset100().pois;
  auto dist = [&](int a, int b) {
    return map::Distance(pois[a], pois[b]);
  };
  auto from_start = [&](int a) {
    return map::Distance(Dataset100().campus.spawn, pois[a]);
  };
  algorithms::GaConfig config;
  config.generations = 30;
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        algorithms::GaTour(points, dist, from_start, config, rng).front());
  }
}
BENCHMARK(BM_GaTourPlanning)->Arg(25)->Arg(50)->Unit(benchmark::kMillisecond);

// --- Naive-vs-indexed equivalence self-check (run before benchmarks). ---

bool RoadPositionsEqual(const map::RoadPosition& a,
                        const map::RoadPosition& b) {
  return a.edge == b.edge && a.t == b.t;
}

bool RoadSelfCheck() {
  const map::RoadGraph& roads = Dataset100().campus.roads;
  util::Rng rng(17);
  for (int it = 0; it < 200; ++it) {
    const map::Point2 p{rng.Uniform(-200.0, 2200.0),
                        rng.Uniform(-200.0, 2200.0)};
    const map::Point2 q{rng.Uniform(-200.0, 2200.0),
                        rng.Uniform(-200.0, 2200.0)};
    if (!RoadPositionsEqual(roads.Project(p), roads.ProjectNaive(p))) {
      std::fprintf(stderr, "self-check FAILED: Project mismatch\n");
      return false;
    }
    const map::RoadPosition a = roads.Project(p);
    const map::RoadPosition b = roads.Project(q);
    if (roads.PathDistance(a, b) != roads.PathDistanceNaive(a, b)) {
      std::fprintf(stderr, "self-check FAILED: PathDistance mismatch\n");
      return false;
    }
    const double budget = rng.Uniform(0.0, 400.0);
    double moved_fast = 0.0, moved_naive = 0.0;
    const map::RoadPosition mf = roads.MoveAlong(a, b, budget, &moved_fast);
    const map::RoadPosition mn =
        roads.MoveAlongNaive(a, b, budget, &moved_naive);
    if (!RoadPositionsEqual(mf, mn) || moved_fast != moved_naive) {
      std::fprintf(stderr, "self-check FAILED: MoveAlong mismatch\n");
      return false;
    }
  }
  return true;
}

bool EventsEqual(const env::CollectionEvent& a,
                 const env::CollectionEvent& b) {
  return a.subchannel == b.subchannel && a.uav == b.uav && a.ugv == b.ugv &&
         a.poi_uav == b.poi_uav && a.poi_ugv == b.poi_ugv &&
         a.collected_uav_gbit == b.collected_uav_gbit &&
         a.collected_ugv_gbit == b.collected_ugv_gbit &&
         a.loss_uav == b.loss_uav && a.loss_ugv == b.loss_ugv &&
         a.sinr_uplink_uav_db == b.sinr_uplink_uav_db &&
         a.sinr_relay_db == b.sinr_relay_db &&
         a.sinr_uplink_ugv_db == b.sinr_uplink_ugv_db;
}

bool StepResultsEqual(const env::StepResult& a, const env::StepResult& b) {
  if (a.observations != b.observations || a.state != b.state ||
      a.rewards != b.rewards || a.done != b.done ||
      a.events.size() != b.events.size()) {
    return false;
  }
  for (size_t i = 0; i < a.events.size(); ++i) {
    if (!EventsEqual(a.events[i], b.events[i])) return false;
  }
  return true;
}

bool EnvSelfCheck() {
  env::EnvConfig indexed_config;
  indexed_config.num_timeslots = 40;
  indexed_config.use_spatial_index = true;
  env::EnvConfig naive_config = indexed_config;
  naive_config.use_spatial_index = false;
  env::ScEnv indexed(indexed_config, Dataset100(), 11);
  env::ScEnv naive(naive_config, Dataset100(), 11);
  env::StepResult si, sn;
  indexed.Reset(si);
  naive.Reset(sn);
  if (!StepResultsEqual(si, sn)) {
    std::fprintf(stderr, "self-check FAILED: Reset mismatch\n");
    return false;
  }
  util::Rng rng(23);
  std::vector<env::UvAction> actions(indexed.num_agents());
  for (int t = 0; t < indexed_config.num_timeslots; ++t) {
    RandomActions(rng, actions);
    indexed.Step(actions, si);
    naive.Step(actions, sn);
    if (!StepResultsEqual(si, sn)) {
      std::fprintf(stderr, "self-check FAILED: Step %d mismatch\n", t);
      return false;
    }
  }
  return true;
}

// Batched-channel equivalence: the SIMD kernels must be bit-identical to
// the scalar ChannelModel per link, and a full episode stepped with
// use_channel_batch on/off must produce identical StepResults.
bool ChannelSelfCheck() {
  env::EnvConfig config;
  const env::ChannelModel model(config);
  const env::ChannelBatchParams params =
      env::ChannelBatchParams::FromConfig(config);
  std::vector<map::Point2> pts;
  const env::PoiSoa soa = BenchSoa(512, pts);
  std::vector<double> gains(pts.size());
  const map::Point2 rx{400.0, 1600.0};
  env::AirGainsBatch(params, soa, nullptr, 512, rx, config.uav_height,
                     gains.data());
  for (int i = 0; i < 512; ++i) {
    if (gains[i] != model.AirLinkGain(pts[i], rx, config.uav_height)) {
      std::fprintf(stderr, "self-check FAILED: air gain %d mismatch\n", i);
      return false;
    }
  }
  env::GroundGainsBatch(params, soa, nullptr, 512, rx, 1.2, gains.data());
  for (int i = 0; i < 512; ++i) {
    if (gains[i] != model.GroundLinkGain(pts[i], rx, 1.2)) {
      std::fprintf(stderr, "self-check FAILED: ground gain %d mismatch\n", i);
      return false;
    }
  }

  env::EnvConfig batch_config;
  batch_config.num_timeslots = 40;
  batch_config.use_channel_batch = true;
  env::EnvConfig scalar_config = batch_config;
  scalar_config.use_channel_batch = false;
  env::ScEnv batched(batch_config, Dataset100(), 13);
  env::ScEnv scalar(scalar_config, Dataset100(), 13);
  env::StepResult sb, ss;
  batched.Reset(sb);
  scalar.Reset(ss);
  if (!StepResultsEqual(sb, ss)) {
    std::fprintf(stderr, "self-check FAILED: channel Reset mismatch\n");
    return false;
  }
  util::Rng rng(31);
  std::vector<env::UvAction> actions(batched.num_agents());
  for (int t = 0; t < batch_config.num_timeslots; ++t) {
    RandomActions(rng, actions);
    batched.Step(actions, sb);
    scalar.Step(actions, ss);
    if (!StepResultsEqual(sb, ss)) {
      std::fprintf(stderr, "self-check FAILED: channel Step %d mismatch\n",
                   t);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!RoadSelfCheck() || !EnvSelfCheck() || !ChannelSelfCheck()) return 1;
  std::fprintf(stderr,
               "naive-vs-indexed + batched-channel self-check OK\n");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
