// Microbenchmarks of the environment substrate: env step/reset, channel
// evaluation, road-graph queries and the GA tour planner.

#include <benchmark/benchmark.h>

#include "algorithms/shortest_path.h"
#include "bench/bench_common.h"

namespace {

using namespace agsc;

const map::Dataset& Dataset100() {
  return bench::GetDataset(map::CampusId::kPurdue, 100);
}

void BM_EnvReset(benchmark::State& state) {
  env::EnvConfig config;
  env::ScEnv env(config, Dataset100(), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.Reset().observations[0][0]);
  }
}
BENCHMARK(BM_EnvReset)->Unit(benchmark::kMicrosecond);

void BM_EnvStep(benchmark::State& state) {
  env::EnvConfig config;
  env::ScEnv env(config, Dataset100(), 1);
  env.Reset();
  util::Rng rng(2);
  std::vector<env::UvAction> actions(env.num_agents());
  for (auto _ : state) {
    if (env.timeslot() >= config.num_timeslots) env.Reset();
    for (auto& a : actions) {
      a = {rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)};
    }
    benchmark::DoNotOptimize(env.Step(actions).rewards[0]);
  }
}
BENCHMARK(BM_EnvStep)->Unit(benchmark::kMicrosecond);

void BM_ChannelAirLinkGain(benchmark::State& state) {
  env::EnvConfig config;
  env::ChannelModel channel(config);
  double x = 0.0;
  for (auto _ : state) {
    x += channel.AirLinkGain({x - std::floor(x), 200.0}, {500.0, 500.0},
                             60.0);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_ChannelAirLinkGain);

void BM_RoadProject(benchmark::State& state) {
  const map::RoadGraph& roads = Dataset100().campus.roads;
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        roads.Project({rng.Uniform(0.0, 2000.0), rng.Uniform(0.0, 2000.0)})
            .edge);
  }
}
BENCHMARK(BM_RoadProject)->Unit(benchmark::kMicrosecond);

void BM_RoadMoveToward(benchmark::State& state) {
  const map::RoadGraph& roads = Dataset100().campus.roads;
  util::Rng rng(4);
  map::RoadPosition pos = roads.Project({1000.0, 1000.0});
  for (auto _ : state) {
    pos = roads.MoveToward(
        pos, {rng.Uniform(0.0, 2000.0), rng.Uniform(0.0, 2000.0)}, 100.0);
    benchmark::DoNotOptimize(pos.t);
  }
}
BENCHMARK(BM_RoadMoveToward)->Unit(benchmark::kMicrosecond);

void BM_GaTourPlanning(benchmark::State& state) {
  const int count = static_cast<int>(state.range(0));
  std::vector<int> points(count);
  for (int i = 0; i < count; ++i) points[i] = i;
  const auto& pois = Dataset100().pois;
  auto dist = [&](int a, int b) {
    return map::Distance(pois[a], pois[b]);
  };
  auto from_start = [&](int a) {
    return map::Distance(Dataset100().campus.spawn, pois[a]);
  };
  algorithms::GaConfig config;
  config.generations = 30;
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        algorithms::GaTour(points, dist, from_start, config, rng).front());
  }
}
BENCHMARK(BM_GaTourPlanning)->Arg(25)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
