// Reproduces Fig. 7 (Purdue) and Fig. 8 (NCSU): impact of the UAV hovering
// height H_u. Paper sweep: {60, 70, 90, 120, 150} m.

#include "bench/bench_common.h"

int main() {
  using namespace agsc;
  const bench::Settings settings = bench::Settings::FromEnv();
  const std::vector<double> sweep =
      settings.Sweep<double>({60, 90, 150}, {60, 70, 90, 120, 150});
  bench::RunParameterSweep(
      "Fig. 7 / Fig. 8 - impact of UAV hovering height", "height_m", sweep,
      [](env::EnvConfig& config, double value) {
        config.uav_height = value;
      },
      settings, "fig7_8_uav_height");
  return 0;
}
