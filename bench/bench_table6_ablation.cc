// Reproduces Table VI: ablation study removing the two plug-in modules of
// h/i-MADRL one at a time (and both, which reduces to plain IPPO), on both
// campuses with all five metrics.

#include <iostream>

#include "bench/bench_common.h"
#include "core/evaluator.h"

int main() {
  using namespace agsc;
  const bench::Settings settings = bench::Settings::FromEnv();
  bench::PrintBanner("Table VI - ablation study", settings);

  struct Variant {
    const char* name;
    bool use_eoi;
    bool use_copo;
  };
  const std::vector<Variant> variants = {
      {"h/i-MADRL", true, true},
      {"h/i-MADRL w/o i-EOI", false, true},
      {"h/i-MADRL w/o h-CoPO", true, false},
      {"h/i-MADRL w/o i-EOI, h-CoPO", false, false},
  };

  util::CsvWriter csv(bench::OutDir() + "/table6_ablation.csv",
                      {"campus", "variant", "psi", "sigma", "xi", "kappa",
                       "lambda"});
  for (const map::CampusId campus :
       {map::CampusId::kPurdue, map::CampusId::kNcsu}) {
    util::Table table({map::CampusName(campus), "psi", "sigma", "xi",
                       "kappa", "lambda"});
    for (const Variant& variant : variants) {
      env::EnvConfig env_config = bench::BaseEnvConfig(settings);
      core::TrainConfig train = bench::BaseTrainConfig(settings, 61);
      train.use_eoi = variant.use_eoi;
      train.use_copo = variant.use_copo;
      bench::TrainedHiMadrl run =
          bench::TrainHiMadrlVariant(env_config, campus, settings, train);
      const env::Metrics m =
          core::Evaluate(*run.env, *run.trainer, settings.eval_episodes,
                         321)
              .mean;
      table.AddRow(variant.name, m.ToVector());
      std::cerr << "  [" << map::CampusName(campus) << "] " << variant.name
                << ": lambda=" << util::FormatDouble(m.efficiency, 3)
                << "\n";
      csv.WriteRow({map::CampusName(campus), variant.name,
                    util::FormatDouble(m.data_collection_ratio, 4),
                    util::FormatDouble(m.data_loss_ratio, 4),
                    util::FormatDouble(m.energy_consumption_ratio, 4),
                    util::FormatDouble(m.geographical_fairness, 4),
                    util::FormatDouble(m.efficiency, 4)});
      csv.Flush();
    }
    table.Print();
    std::cout << "\n";
  }
  std::cout << "Paper shape: removing i-EOI mainly hurts collection & "
               "fairness; removing h-CoPO mainly raises data loss; removing "
               "both is worst.\n";
  return 0;
}
