// Reproduces Fig. 5 (Purdue) and Fig. 6 (NCSU): impact of the number of
// AG-NOMA subchannels Z. Paper sweep: {1, 2, 3, 4, 5, 7, 10}.

#include "bench/bench_common.h"

int main() {
  using namespace agsc;
  const bench::Settings settings = bench::Settings::FromEnv();
  const std::vector<double> sweep =
      settings.Sweep<double>({1, 3, 10}, {1, 2, 3, 4, 5, 7, 10});
  bench::RunParameterSweep(
      "Fig. 5 / Fig. 6 - impact of no. of subchannels", "subchannels", sweep,
      [](env::EnvConfig& config, double value) {
        config.num_subchannels = static_cast<int>(value);
      },
      settings, "fig5_6_subchannels");
  return 0;
}
