#ifndef AGSC_BENCH_BENCH_COMMON_H_
#define AGSC_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "algorithms/e_divert.h"
#include "core/hi_madrl.h"
#include "env/sc_env.h"
#include "util/csv.h"
#include "util/table.h"

namespace agsc::bench {

/// Scale knobs shared by every table/figure harness. `AGSC_BENCH_SCALE=paper`
/// selects the full grid and training budget; the default smoke scale keeps
/// the whole suite runnable in minutes on one laptop core. Individual knobs
/// can be overridden via AGSC_BENCH_ITERS / AGSC_BENCH_EVAL_EPISODES /
/// AGSC_BENCH_TIMESLOTS / AGSC_BENCH_POIS.
struct Settings {
  bool paper = false;
  int timeslots = 40;              ///< T (paper: 100).
  int num_pois = 40;               ///< I (paper: 100).
  int train_iterations = 35;       ///< Outer iterations (paper: 150).
  int episodes_per_iteration = 3;  ///< (paper: 4).
  int eval_episodes = 5;           ///< Test episodes averaged (paper: 50).
  int num_seeds = 1;               ///< Independent seeds averaged (paper: 3).
  std::vector<int> net_hidden = {64, 32};

  /// Reads AGSC_BENCH_* environment variables.
  static Settings FromEnv();

  /// Picks the smoke or paper sweep list.
  template <typename T>
  std::vector<T> Sweep(std::vector<T> smoke, std::vector<T> full) const {
    return paper ? full : smoke;
  }
};

/// The six methods of the paper's comparison (Section VI-A) plus Greedy.
enum class Method {
  kHiMadrl,       ///< Full h/i-MADRL (IPPO + i-EOI + h-CoPO).
  kHiMadrlCopo,   ///< h/i-MADRL(CoPO): plain CoPO replaces h-CoPO.
  kMappo,         ///< MAPPO (no plug-ins, centralized critics).
  kEDivert,       ///< e-Divert (CTDE + prioritized replay + GRU).
  kShortestPath,  ///< GA-planned shortest tours.
  kRandom,        ///< Uniform random actions.
};

/// All six paper methods in display order.
const std::vector<Method>& AllMethods();

/// Display name, e.g. "h/i-MADRL".
std::string MethodName(Method method);

/// Environment config with Table II defaults scaled by `settings`.
env::EnvConfig BaseEnvConfig(const Settings& settings);

/// h/i-MADRL training config scaled by `settings`.
core::TrainConfig BaseTrainConfig(const Settings& settings, uint64_t seed);

/// Cached dataset per (campus, num_pois) — building traces is expensive.
const map::Dataset& GetDataset(map::CampusId campus, int num_pois);

/// Trains (if learning-based) and evaluates `method` under `config`;
/// averages `settings.num_seeds` independent runs. Prints one progress line
/// to stderr per run.
env::Metrics RunMethod(Method method, const env::EnvConfig& config,
                       map::CampusId campus, const Settings& settings,
                       uint64_t seed);

/// Trains an h/i-MADRL variant and returns the live trainer plus its env
/// (for trajectory/LCF inspection in the Fig. 2 / Fig. 11 harnesses).
struct TrainedHiMadrl {
  std::unique_ptr<env::ScEnv> env;
  std::unique_ptr<core::HiMadrlTrainer> trainer;
};
TrainedHiMadrl TrainHiMadrlVariant(const env::EnvConfig& config,
                                   map::CampusId campus,
                                   const Settings& settings,
                                   const core::TrainConfig& train_config);

/// Output directory for CSV dumps ("bench_out", created on demand).
std::string OutDir();

/// Shared driver for the paper's figure-style sweeps (Figs. 3-10): for each
/// campus and each sweep value, runs all six methods and reports the five
/// metrics as per-metric tables (rows = methods, columns = sweep values),
/// exactly the series each figure plots. Also writes
/// bench_out/<csv_name>.csv with one row per (campus, method, value).
/// `apply` mutates the base EnvConfig for a sweep value.
void RunParameterSweep(
    const std::string& title, const std::string& param_name,
    const std::vector<double>& values,
    const std::function<void(env::EnvConfig&, double)>& apply,
    const Settings& settings, const std::string& csv_name);

/// Prints the standard harness banner (scale, budget).
void PrintBanner(const std::string& title, const Settings& settings);

}  // namespace agsc::bench

#endif  // AGSC_BENCH_BENCH_COMMON_H_
