// Reproduces Table VII: computational complexity — per-timeslot action
// selection latency and model memory of each learned method. As in the
// paper, h/i-MADRL / h/i-MADRL(CoPO) / MAPPO share the same inference path
// (the plug-ins only exist at training time under CTDE), while e-Divert
// pays for its recurrent actor.

#include <iostream>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace {

using namespace agsc;

env::EnvConfig FullScaleConfig() {
  env::EnvConfig config;  // Table II defaults: I = 100, 2 UAVs + 2 UGVs.
  return config;
}

env::ScEnv& SharedEnv() {
  static env::ScEnv* env = [] {
    auto* e = new env::ScEnv(
        FullScaleConfig(),
        bench::GetDataset(map::CampusId::kPurdue, 100), 1);
    e->Reset();
    return e;
  }();
  return *env;
}

core::HiMadrlTrainer& SharedHiMadrl() {
  static core::HiMadrlTrainer* trainer = [] {
    core::TrainConfig config;
    config.net.hidden = {128, 64};  // Paper-scale networks.
    return new core::HiMadrlTrainer(SharedEnv(), config);
  }();
  return *trainer;
}

algorithms::EDivertTrainer& SharedEDivert() {
  static algorithms::EDivertTrainer* trainer = [] {
    algorithms::EDivertConfig config;
    config.hidden = 128;
    config.gru_hidden = 64;
    return new algorithms::EDivertTrainer(SharedEnv(), config);
  }();
  return *trainer;
}

/// One joint decision: all K agents select their timeslot action. This is
/// the quantity Table VII reports ("time cost to select actions in a
/// timeslot").
void BM_HiMadrlActionSelection(benchmark::State& state) {
  env::ScEnv& env = SharedEnv();
  core::HiMadrlTrainer& trainer = SharedHiMadrl();
  const env::StepResult r = env.Reset();
  util::Rng rng(7);
  for (auto _ : state) {
    for (int k = 0; k < env.num_agents(); ++k) {
      benchmark::DoNotOptimize(
          trainer.Act(env, k, r.observations[k], rng, true));
    }
  }
  state.SetLabel("h/i-MADRL == h/i-MADRL(CoPO) == MAPPO (same actor path)");
}
BENCHMARK(BM_HiMadrlActionSelection)->Unit(benchmark::kMillisecond);

void BM_EDivertActionSelection(benchmark::State& state) {
  env::ScEnv& env = SharedEnv();
  algorithms::EDivertTrainer& trainer = SharedEDivert();
  const env::StepResult r = env.Reset();
  trainer.BeginEpisode(env);
  util::Rng rng(7);
  for (auto _ : state) {
    for (int k = 0; k < env.num_agents(); ++k) {
      benchmark::DoNotOptimize(
          trainer.Act(env, k, r.observations[k], rng, true));
    }
  }
  state.SetLabel("e-Divert (recurrent actor)");
}
BENCHMARK(BM_EDivertActionSelection)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== Table VII - computational complexity ===\n";
  // Memory column: inference (actor) parameter bytes + total train-time
  // footprint, mirroring the paper's observation that the plug-in networks
  // are training-only constructs.
  {
    using namespace agsc;
    util::Table table({"method", "inference params (KB)",
                       "train-time params (KB)"});
    const double kb = 1024.0;
    core::HiMadrlTrainer& hi = SharedHiMadrl();
    table.AddRow("h/i-MADRL (also CoPO variant / MAPPO actor path)",
                 {hi.ActorParameterBytes() / kb,
                  hi.TotalParameterCount() * 4.0 / kb});
    algorithms::EDivertTrainer& ed = SharedEDivert();
    table.AddRow("e-Divert",
                 {ed.ActorParameterBytes() / kb,
                  ed.TotalParameterCount() * 4.0 / kb});
    table.Print();
    std::cout << "\nAction-selection latency (whole fleet, one timeslot):\n";
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
