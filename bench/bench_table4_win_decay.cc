// Reproduces Table IV: the impact of linearly decreasing the intrinsic
// reward weight omega_in during training (0.01 -> 0.001 and 0.003 -> 0),
// compared against the fixed omega_in = 0.003 of Table III. The paper finds
// the decaying schedules *worse* because individuality does not conflict
// with the task objective (Section VI-B).

#include <iostream>

#include "bench/bench_common.h"
#include "core/evaluator.h"

int main() {
  using namespace agsc;
  const bench::Settings settings = bench::Settings::FromEnv();
  bench::PrintBanner("Table IV - linearly decreased omega_in", settings);

  struct Schedule {
    const char* name;
    float start;
    float final;  // <0 = fixed.
  };
  const std::vector<Schedule> schedules = {
      {"fixed 0.003 (Table III best)", 0.003f, -1.0f},
      {"0.01 -> 0.001", 0.01f, 0.001f},
      {"0.003 -> 0", 0.003f, 0.0f},
  };

  util::CsvWriter csv(bench::OutDir() + "/table4_win_decay.csv",
                      {"campus", "schedule", "lambda"});
  util::Table table({"omega_in schedule", "lambda (Purdue)",
                     "lambda (NCSU)"});
  for (const Schedule& schedule : schedules) {
    std::vector<double> lambdas;
    for (const map::CampusId campus :
         {map::CampusId::kPurdue, map::CampusId::kNcsu}) {
      env::EnvConfig env_config = bench::BaseEnvConfig(settings);
      core::TrainConfig train = bench::BaseTrainConfig(settings, 47);
      train.omega_in = schedule.start;
      train.omega_in_final = schedule.final;
      bench::TrainedHiMadrl run =
          bench::TrainHiMadrlVariant(env_config, campus, settings, train);
      const env::Metrics m =
          core::Evaluate(*run.env, *run.trainer, settings.eval_episodes,
                         777)
              .mean;
      lambdas.push_back(m.efficiency);
      std::cerr << "  [" << map::CampusName(campus) << "] " << schedule.name
                << ": lambda=" << util::FormatDouble(m.efficiency, 3)
                << "\n";
      csv.WriteRow({map::CampusName(campus), schedule.name,
                    util::FormatDouble(m.efficiency, 4)});
      csv.Flush();
    }
    table.AddRow(schedule.name, lambdas);
  }
  table.Print();
  std::cout << "Paper shape: both decaying schedules underperform the fixed "
               "omega_in.\n";
  return 0;
}
