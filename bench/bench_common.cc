#include "bench/bench_common.h"

#include <iostream>
#include <map>

#include "algorithms/random_policy.h"
#include "algorithms/shortest_path.h"
#include "core/evaluator.h"
#include "util/env_flags.h"
#include "util/logging.h"

namespace agsc::bench {

Settings Settings::FromEnv() {
  Settings s;
  s.paper = util::GetBenchScale() == util::BenchScale::kPaper;
  if (s.paper) {
    s.timeslots = 100;
    s.num_pois = 100;
    s.train_iterations = 150;
    s.episodes_per_iteration = 4;
    s.eval_episodes = 50;
    s.num_seeds = 3;
    s.net_hidden = {128, 64};
  }
  s.train_iterations =
      util::GetEnvOr("AGSC_BENCH_ITERS", s.train_iterations);
  s.eval_episodes =
      util::GetEnvOr("AGSC_BENCH_EVAL_EPISODES", s.eval_episodes);
  s.timeslots = util::GetEnvOr("AGSC_BENCH_TIMESLOTS", s.timeslots);
  s.num_pois = util::GetEnvOr("AGSC_BENCH_POIS", s.num_pois);
  return s;
}

const std::vector<Method>& AllMethods() {
  static const std::vector<Method>* methods = new std::vector<Method>{
      Method::kHiMadrl,      Method::kHiMadrlCopo,  Method::kMappo,
      Method::kEDivert,      Method::kShortestPath, Method::kRandom};
  return *methods;
}

std::string MethodName(Method method) {
  switch (method) {
    case Method::kHiMadrl: return "h/i-MADRL";
    case Method::kHiMadrlCopo: return "h/i-MADRL(CoPO)";
    case Method::kMappo: return "MAPPO";
    case Method::kEDivert: return "e-Divert";
    case Method::kShortestPath: return "Shortest Path";
    case Method::kRandom: return "Random";
  }
  return "?";
}

env::EnvConfig BaseEnvConfig(const Settings& settings) {
  env::EnvConfig config;
  config.num_timeslots = settings.timeslots;
  config.num_pois = settings.num_pois;
  return config;
}

core::TrainConfig BaseTrainConfig(const Settings& settings, uint64_t seed) {
  core::TrainConfig config;
  config.iterations = settings.train_iterations;
  config.episodes_per_iteration = settings.episodes_per_iteration;
  config.net.hidden = settings.net_hidden;
  config.eoi.hidden = settings.net_hidden;
  config.seed = seed;
  if (!settings.paper) {
    // The smoke budget is tiny; trade some stability for learning speed.
    config.actor_lr = 5e-4f;
    config.critic_lr = 1.5e-3f;
    config.eoi.lr = 2e-3f;
  }
  return config;
}

const map::Dataset& GetDataset(map::CampusId campus, int num_pois) {
  static std::map<std::pair<int, int>, map::Dataset>* cache =
      new std::map<std::pair<int, int>, map::Dataset>;
  const std::pair<int, int> key{static_cast<int>(campus), num_pois};
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, map::BuildDataset(campus, num_pois)).first;
  }
  return it->second;
}

namespace {

env::Metrics RunOnce(Method method, const env::EnvConfig& config,
                     map::CampusId campus, const Settings& settings,
                     uint64_t seed) {
  const map::Dataset& dataset = GetDataset(campus, config.num_pois);
  env::ScEnv env(config, dataset, seed);
  const uint64_t eval_seed = seed * 7919 + 13;
  switch (method) {
    case Method::kHiMadrl:
    case Method::kHiMadrlCopo:
    case Method::kMappo: {
      core::TrainConfig train = BaseTrainConfig(settings, seed);
      if (method == Method::kHiMadrlCopo) train.hetero_copo = false;
      if (method == Method::kMappo) {
        train.base = core::BaseAlgo::kMappo;
        train.use_eoi = false;
        train.use_copo = false;
      }
      core::HiMadrlTrainer trainer(env, train);
      trainer.Train();
      return core::Evaluate(env, trainer, settings.eval_episodes, eval_seed)
          .mean;
    }
    case Method::kEDivert: {
      algorithms::EDivertConfig train;
      train.iterations = settings.train_iterations;
      train.episodes_per_iteration = settings.episodes_per_iteration;
      train.updates_per_iteration = settings.paper ? 64 : 16;
      train.hidden = settings.net_hidden.back();
      train.gru_hidden = settings.net_hidden.back();
      train.seed = seed;
      algorithms::EDivertTrainer trainer(env, train);
      trainer.Train();
      return core::Evaluate(env, trainer, settings.eval_episodes, eval_seed)
          .mean;
    }
    case Method::kShortestPath: {
      algorithms::ShortestPathPolicy policy;
      return core::Evaluate(env, policy, settings.eval_episodes, eval_seed)
          .mean;
    }
    case Method::kRandom: {
      algorithms::RandomPolicy policy;
      return core::Evaluate(env, policy, settings.eval_episodes, eval_seed,
                            /*deterministic=*/false)
          .mean;
    }
  }
  return env::Metrics{};
}

}  // namespace

env::Metrics RunMethod(Method method, const env::EnvConfig& config,
                       map::CampusId campus, const Settings& settings,
                       uint64_t seed) {
  std::vector<env::Metrics> per_seed;
  for (int s = 0; s < settings.num_seeds; ++s) {
    per_seed.push_back(
        RunOnce(method, config, campus, settings, seed + 1000 * s));
  }
  const env::Metrics mean = env::Metrics::Average(per_seed);
  std::cerr << "  [" << map::CampusName(campus) << "] "
            << MethodName(method) << ": lambda="
            << util::FormatDouble(mean.efficiency, 3) << "\n";
  return mean;
}

TrainedHiMadrl TrainHiMadrlVariant(const env::EnvConfig& config,
                                   map::CampusId campus,
                                   const Settings& settings,
                                   const core::TrainConfig& train_config) {
  TrainedHiMadrl out;
  const map::Dataset& dataset = GetDataset(campus, config.num_pois);
  out.env = std::make_unique<env::ScEnv>(config, dataset, train_config.seed);
  out.trainer =
      std::make_unique<core::HiMadrlTrainer>(*out.env, train_config);
  (void)settings;
  out.trainer->Train();
  return out;
}

std::string OutDir() {
  const std::string dir = "bench_out";
  util::EnsureDirectory(dir);
  return dir;
}

void RunParameterSweep(
    const std::string& title, const std::string& param_name,
    const std::vector<double>& values,
    const std::function<void(env::EnvConfig&, double)>& apply,
    const Settings& settings, const std::string& csv_name) {
  PrintBanner(title, settings);
  util::CsvWriter csv(OutDir() + "/" + csv_name + ".csv",
                      {"campus", "method", param_name, "psi", "sigma", "xi",
                       "kappa", "lambda"});
  const char* metric_names[] = {"data collection ratio (psi)",
                                "data loss ratio (sigma)",
                                "energy consumption ratio (xi)",
                                "geographical fairness (kappa)",
                                "efficiency (lambda)"};
  for (const map::CampusId campus :
       {map::CampusId::kPurdue, map::CampusId::kNcsu}) {
    // results[method][value index] -> metrics.
    std::vector<std::vector<env::Metrics>> results(AllMethods().size());
    for (size_t vi = 0; vi < values.size(); ++vi) {
      env::EnvConfig config = BaseEnvConfig(settings);
      apply(config, values[vi]);
      for (size_t mi = 0; mi < AllMethods().size(); ++mi) {
        const Method method = AllMethods()[mi];
        const env::Metrics metrics =
            RunMethod(method, config, campus, settings,
                      /*seed=*/17 + vi * 101 + mi * 13);
        results[mi].push_back(metrics);
        csv.WriteRow(
            {map::CampusName(campus), MethodName(method),
             util::FormatDouble(values[vi], 3),
             util::FormatDouble(metrics.data_collection_ratio, 4),
             util::FormatDouble(metrics.data_loss_ratio, 4),
             util::FormatDouble(metrics.energy_consumption_ratio, 4),
             util::FormatDouble(metrics.geographical_fairness, 4),
             util::FormatDouble(metrics.efficiency, 4)});
        csv.Flush();
      }
    }
    std::cout << "\n--- " << map::CampusName(campus) << " ---\n";
    for (int metric = 0; metric < 5; ++metric) {
      std::vector<std::string> header = {std::string(metric_names[metric])};
      for (double v : values) {
        header.push_back(param_name + "=" + util::FormatDouble(v, 1));
      }
      util::Table table(header);
      for (size_t mi = 0; mi < AllMethods().size(); ++mi) {
        std::vector<double> row;
        for (const env::Metrics& m : results[mi]) {
          row.push_back(m.ToVector()[metric]);
        }
        table.AddRow(MethodName(AllMethods()[mi]), row);
      }
      table.Print();
      std::cout << "\n";
    }
  }
  std::cout << "CSV written to " << OutDir() << "/" << csv_name << ".csv\n";
}

void PrintBanner(const std::string& title, const Settings& settings) {
  std::cout << "=== " << title << " ===\n"
            << "scale=" << (settings.paper ? "paper" : "smoke")
            << " (AGSC_BENCH_SCALE), T=" << settings.timeslots
            << ", I=" << settings.num_pois
            << ", train_iters=" << settings.train_iterations
            << ", eval_episodes=" << settings.eval_episodes
            << ", seeds=" << settings.num_seeds << "\n";
}

}  // namespace agsc::bench
