// Reproduces Fig. 3 (Purdue) and Fig. 4 (NCSU): impact of the number of
// UAVs/UGVs (deployed in equal numbers) on all five metrics for all six
// methods. Paper sweep: {1, 2, 3, 4, 5, 7, 10}.

#include "bench/bench_common.h"

int main() {
  using namespace agsc;
  const bench::Settings settings = bench::Settings::FromEnv();
  const std::vector<double> sweep =
      settings.Sweep<double>({1, 2, 5}, {1, 2, 3, 4, 5, 7, 10});
  bench::RunParameterSweep(
      "Fig. 3 / Fig. 4 - impact of no. of UAVs/UGVs", "num_uvs", sweep,
      [](env::EnvConfig& config, double value) {
        config.num_uavs = static_cast<int>(value);
        config.num_ugvs = static_cast<int>(value);
      },
      settings, "fig3_4_num_uvs");
  return 0;
}
