// Reproduces Table V: impact of the homogeneous-neighbor range (as a
// percentage of the task-area size) on h/i-MADRL's efficiency. The paper
// finds 25% best: shorter ranges miss useful nearby cooperators, longer
// ranges drag in UVs that should not be coordinated with.

#include <iostream>

#include "bench/bench_common.h"
#include "core/evaluator.h"

int main() {
  using namespace agsc;
  const bench::Settings settings = bench::Settings::FromEnv();
  bench::PrintBanner("Table V - impact of neighbor range", settings);

  const std::vector<double> percents =
      settings.Sweep<double>({10, 25, 66}, {10, 25, 33, 50, 66});

  util::CsvWriter csv(bench::OutDir() + "/table5_neighbor_range.csv",
                      {"campus", "percent", "lambda"});
  std::vector<std::string> header = {"% w.r.t task area size"};
  for (double p : percents) header.push_back(util::FormatDouble(p, 0));
  util::Table table(header);
  for (const map::CampusId campus :
       {map::CampusId::kPurdue, map::CampusId::kNcsu}) {
    std::vector<double> lambdas;
    for (double percent : percents) {
      env::EnvConfig env_config = bench::BaseEnvConfig(settings);
      env_config.neighbor_range_fraction = percent / 100.0;
      core::TrainConfig train = bench::BaseTrainConfig(settings, 53);
      bench::TrainedHiMadrl run =
          bench::TrainHiMadrlVariant(env_config, campus, settings, train);
      const env::Metrics m =
          core::Evaluate(*run.env, *run.trainer, settings.eval_episodes,
                         999)
              .mean;
      lambdas.push_back(m.efficiency);
      std::cerr << "  [" << map::CampusName(campus) << "] range=" << percent
                << "%: lambda=" << util::FormatDouble(m.efficiency, 3)
                << "\n";
      csv.WriteRow({map::CampusName(campus), util::FormatDouble(percent, 0),
                    util::FormatDouble(m.efficiency, 4)});
      csv.Flush();
    }
    table.AddRow("lambda (" + map::CampusName(campus) + ")", lambdas);
  }
  table.Print();
  std::cout << "Paper shape: 25% yields the highest efficiency.\n";
  return 0;
}
