// Serving-path benchmark: sustained request throughput and batching
// latency of core/DispatchServer. For each (sessions, clients, max_batch)
// configuration, client threads step their episode sessions through the
// batched inference path for a fixed wall-clock budget; the server's own
// latency window supplies p50/p99. Each configuration is measured twice:
// `direct` (in-process DispatchServer calls) and `tcp` (the same requests
// framed through core/ServeFrontend + ServeClient over loopback), so the
// delta is the full network-frontend overhead — framing, CRC, syscalls,
// and the per-connection handler hop. Results are recorded in
// BENCH_serving.json at the repo root.
//
// A second phase sweeps OFFERED load past the saturation point: open-loop
// submitter threads pace requests at a fixed arrival rate (0.5x..2x the
// saturation capacity found by a doubling ramp) against a deadline +
// bounded admission queue, reporting goodput (deadline-met responses/s)
// and shed rate at each level. The curve is the congestion-collapse
// guard: with admission control on, goodput at 2x saturation must stay
// >= ~90% of its peak — overload turns into explicit rejections, not
// queueing collapse.
//
// The policy is a freshly initialized (untrained) network — serving cost
// depends on architecture, not on the learned values — snapshotted through
// the same PolicySnapshot::FromTrainer path agsc_serve uses.
//
//   --smoke                  one tiny configuration, ~fractions of a second
//                            (the ctest entry; guards the harness itself)
//   AGSC_BENCH_SCALE=paper   longer measurement window per configuration
//   AGSC_BENCH_TIMESLOTS, AGSC_BENCH_POIS   override the env scale

#include <algorithm>
#include <chrono>
#include <deque>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/dispatch_server.h"
#include "core/policy_snapshot.h"
#include "core/serve_protocol.h"
#include "env/sc_env.h"
#include "util/table.h"

namespace agsc {
namespace {

struct Combo {
  int sessions = 0;
  int clients = 0;
  int max_batch = 0;
};

struct Result {
  Combo combo;
  const char* transport = "direct";
  double seconds = 0.0;
  uint64_t requests = 0;
  double req_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double rows_per_batch = 0.0;
};

Result Measure(const env::ScEnv& env, const core::HiMadrlTrainer& trainer,
               const Combo& combo, double budget_sec, bool over_tcp) {
  core::DispatchConfig config;
  config.num_sessions = combo.sessions;
  config.max_batch = combo.max_batch;
  config.deadline_ms = 0;  // Throughput run: serve everything, never expire.
  core::DispatchServer server(env, config);
  server.PublishSnapshot(core::PolicySnapshot::FromTrainer(trainer, "<live>"));
  server.Start();

  std::unique_ptr<core::ServeFrontend> frontend;
  if (over_tcp) {
    core::ServeFrontend::Options fopts;
    fopts.listen_address = "127.0.0.1:0";
    frontend = std::make_unique<core::ServeFrontend>(server, fopts);
    frontend->Start();
  }

  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(budget_sec));
  // TCP mode records *client-observed* round-trip latencies (framing + CRC
  // + syscalls + dispatch), one vector per client, merged after the join.
  std::vector<std::vector<double>> rtt_ms(
      static_cast<size_t>(combo.clients));
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(combo.clients));
  for (int c = 0; c < combo.clients; ++c) {
    clients.emplace_back([&, c] {
      int session = c % server.num_sessions();
      core::ServeClient client;
      if (over_tcp &&
          !client.Connect("127.0.0.1", frontend->bound_port(),
                          /*timeout_ms=*/5000)) {
        std::cerr << "  tcp client " << c << ": connect failed\n";
        return;
      }
      while (std::chrono::steady_clock::now() < deadline) {
        core::DispatchResult result;
        if (over_tcp) {
          const auto t0 = std::chrono::steady_clock::now();
          if (!client.StepSession(session, /*timeout_ms=*/30000, result)) {
            break;
          }
          rtt_ms[static_cast<size_t>(c)].push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
        } else {
          result = server.StepSession(session);
        }
        if (result.shutdown) break;
        session = (session + combo.clients) % server.num_sessions();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (frontend != nullptr) frontend->Stop();
  server.Stop();

  const core::DispatchStats stats = server.Stats();
  Result r;
  r.combo = combo;
  r.transport = over_tcp ? "tcp" : "direct";
  r.seconds = seconds;
  r.requests = stats.requests_ok;
  r.req_per_sec = seconds > 0 ? stats.requests_ok / seconds : 0.0;
  r.p50_ms = stats.latency_p50_ms;
  r.p99_ms = stats.latency_p99_ms;
  if (over_tcp) {
    std::vector<double> all;
    for (const std::vector<double>& v : rtt_ms) {
      all.insert(all.end(), v.begin(), v.end());
    }
    if (!all.empty()) {
      std::sort(all.begin(), all.end());
      r.p50_ms = all[all.size() / 2];
      r.p99_ms = all[std::min(all.size() - 1, all.size() * 99 / 100)];
    }
  }
  r.rows_per_batch =
      stats.batches > 0 ? static_cast<double>(stats.rows) / stats.batches : 0.0;
  return r;
}

// One level of the offered-load sweep.
struct SweepResult {
  double offered_per_sec = 0.0;   ///< Target arrival rate.
  double achieved_per_sec = 0.0;  ///< What the pacers actually submitted.
  double goodput_per_sec = 0.0;   ///< Deadline-met (ok) responses per sec.
  double shed_rate = 0.0;         ///< (rejected + expired) / submitted.
  double p99_ms = 0.0;            ///< Server-side p99 of served requests.
  uint64_t submitted = 0;
  uint64_t ok = 0;
  uint64_t expired = 0;
  uint64_t rejected = 0;
};

/// Open-loop arrival at `offered_per_sec`: pacer threads submit stateless
/// Acts on a fixed clock regardless of how the server is coping (a closed
/// loop would self-throttle and hide overload). Every future is collected,
/// so ok/expired/rejected account for every submitted request.
SweepResult MeasureOfferedLoad(const env::ScEnv& env,
                               const core::HiMadrlTrainer& trainer,
                               const std::vector<float>& obs,
                               double offered_per_sec, double budget_sec) {
  core::DispatchConfig config;
  config.num_sessions = 4;
  config.max_batch = 64;
  config.deadline_ms = 10;  // The goodput criterion: served within 10 ms.
  // Queue bound matches the agsc_serve default. Sized so a full queue
  // still drains inside the deadline — overload then surfaces as fast
  // explicit rejections at the tail, not as admitted-then-expired work.
  config.max_queue = 1024;
  core::DispatchServer server(env, config);
  server.PublishSnapshot(core::PolicySnapshot::FromTrainer(trainer, "<live>"));
  server.Start();

  constexpr int kSubmitters = 4;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(budget_sec));
  std::vector<SweepResult> partial(kSubmitters);
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      SweepResult& mine = partial[static_cast<size_t>(s)];
      core::RequestOptions opts;
      opts.client = static_cast<uint64_t>(s);
      const double rate = offered_per_sec / kSubmitters;
      const auto tick_step = std::chrono::milliseconds(2);
      double due = 0.0;  // Fractional-request accumulator per tick.
      std::deque<std::future<core::DispatchResult>> pending;
      const auto count = [&mine](core::DispatchResult result) {
        if (result.ok) {
          ++mine.ok;
        } else if (result.rejected) {
          ++mine.rejected;
        } else if (result.expired) {
          ++mine.expired;
        }
      };
      const auto drain_ready = [&] {
        while (!pending.empty() &&
               pending.front().wait_for(std::chrono::seconds(0)) ==
                   std::future_status::ready) {
          count(pending.front().get());
          pending.pop_front();
        }
      };
      auto tick = start;
      while (tick < deadline) {
        tick += tick_step;
        due += rate * 0.002;
        while (due >= 1.0) {
          pending.push_back(server.ActAsync(0, obs, opts));
          ++mine.submitted;
          due -= 1.0;
        }
        drain_ready();
        std::this_thread::sleep_until(tick);
      }
      for (std::future<core::DispatchResult>& f : pending) count(f.get());
    });
  }
  for (std::thread& t : submitters) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  server.Stop();

  SweepResult r;
  r.offered_per_sec = offered_per_sec;
  for (const SweepResult& p : partial) {
    r.submitted += p.submitted;
    r.ok += p.ok;
    r.expired += p.expired;
    r.rejected += p.rejected;
  }
  r.achieved_per_sec = seconds > 0 ? r.submitted / seconds : 0.0;
  r.goodput_per_sec = seconds > 0 ? r.ok / seconds : 0.0;
  r.shed_rate = r.submitted > 0
                    ? static_cast<double>(r.expired + r.rejected) / r.submitted
                    : 0.0;
  r.p99_ms = server.Stats().latency_p99_ms;
  return r;
}

/// Finds the Act path's saturation knee with a doubling ramp of short
/// open-loop probes: the capacity is the highest probed rate the server
/// absorbed with under 2% shedding. The ramp stops at the first probe that
/// sheds materially (or that the pacers cannot drive). A closed-loop probe
/// would measure latency-bound round-trip throughput instead, which
/// undershoots real capacity by several times.
double CalibrateCapacity(const env::ScEnv& env,
                         const core::HiMadrlTrainer& trainer,
                         const std::vector<float>& obs, double probe_sec) {
  double rate = 32000.0;
  double knee = 0.0;
  for (int i = 0; i < 8; ++i) {
    const SweepResult r =
        MeasureOfferedLoad(env, trainer, obs, rate, probe_sec);
    std::cerr << "    probe " << util::FormatDouble(rate, 0) << " req/s: "
              << "goodput " << util::FormatDouble(r.goodput_per_sec, 0)
              << ", shed_rate " << util::FormatDouble(r.shed_rate, 4) << "\n";
    if (r.shed_rate > 0.02 ||
        r.achieved_per_sec < 0.95 * r.offered_per_sec) {
      // Saturated: shedding, or the pacers can't hit the rate. Fall back
      // to this probe's goodput if even the first rate saturated.
      return knee > 0.0 ? knee : r.goodput_per_sec;
    }
    knee = r.achieved_per_sec;
    rate *= 2.0;
  }
  return knee;
}

}  // namespace
}  // namespace agsc

int main(int argc, char** argv) {
  using namespace agsc;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  const bench::Settings settings = bench::Settings::FromEnv();
  bench::PrintBanner("Policy dispatch serving throughput", settings);
  std::cout << "host hardware concurrency: "
            << std::thread::hardware_concurrency() << "\n";

  const map::Dataset& dataset =
      bench::GetDataset(map::CampusId::kPurdue, settings.num_pois);
  env::EnvConfig env_config = bench::BaseEnvConfig(settings);
  env::ScEnv env(env_config, dataset, /*seed=*/1);
  core::TrainConfig train = bench::BaseTrainConfig(settings, /*seed=*/1);
  core::HiMadrlTrainer trainer(env, train);

  const double budget_sec = smoke ? 0.2 : (settings.paper ? 5.0 : 2.0);
  std::vector<Combo> combos;
  if (smoke) {
    combos = {{2, 2, 8}};
  } else {
    combos = {{1, 1, 1},    {4, 4, 16},  {8, 8, 64},
              {8, 16, 64},  {16, 16, 128}};
  }

  std::vector<Result> results;
  for (const Combo& combo : combos) {
    for (const bool over_tcp : {false, true}) {
      std::cerr << "  measuring sessions=" << combo.sessions
                << " clients=" << combo.clients
                << " max_batch=" << combo.max_batch
                << (over_tcp ? " over tcp" : " direct") << "...\n";
      results.push_back(Measure(env, trainer, combo, budget_sec, over_tcp));
    }
  }

  // Offered-load sweep: find the Act path's saturation capacity with a
  // doubling ramp, then pace open-loop arrivals at fractions/multiples
  // of it.
  const env::StepResult probe =
      env::ScEnv(env_config, dataset, /*seed=*/1).Reset();
  const std::vector<float>& sweep_obs = probe.observations[0];
  std::cerr << "  calibrating act-path saturation capacity...\n";
  const double capacity = CalibrateCapacity(env, trainer, sweep_obs,
                                            smoke ? 0.2 : 0.5);
  const std::vector<double> load_multipliers =
      smoke ? std::vector<double>{2.0}
            : std::vector<double>{0.5, 1.0, 1.5, 2.0};
  std::vector<SweepResult> sweep;
  for (const double mult : load_multipliers) {
    std::cerr << "  offered-load sweep at " << mult << "x capacity ("
              << util::FormatDouble(mult * capacity, 0) << " req/s)...\n";
    sweep.push_back(MeasureOfferedLoad(env, trainer, sweep_obs,
                                       mult * capacity, budget_sec));
  }

  util::Table table({"sessions", "clients", "max_batch", "transport", "req/s",
                     "p50_ms", "p99_ms", "rows/batch"});
  for (const Result& r : results) {
    table.AddRow({std::to_string(r.combo.sessions),
                  std::to_string(r.combo.clients),
                  std::to_string(r.combo.max_batch), r.transport,
                  util::FormatDouble(r.req_per_sec, 1),
                  util::FormatDouble(r.p50_ms, 4),
                  util::FormatDouble(r.p99_ms, 4),
                  util::FormatDouble(r.rows_per_batch, 2)});
  }
  table.Print();

  util::Table sweep_table({"offered/s", "achieved/s", "goodput/s", "ok",
                           "expired", "rejected", "shed_rate", "p99_ms"});
  for (const SweepResult& r : sweep) {
    sweep_table.AddRow({util::FormatDouble(r.offered_per_sec, 0),
                        util::FormatDouble(r.achieved_per_sec, 0),
                        util::FormatDouble(r.goodput_per_sec, 0),
                        std::to_string(r.ok), std::to_string(r.expired),
                        std::to_string(r.rejected),
                        util::FormatDouble(r.shed_rate, 4),
                        util::FormatDouble(r.p99_ms, 4)});
  }
  sweep_table.Print();

  // Machine-readable block (copied into BENCH_serving.json).
  std::cout << "{\n  \"hardware_concurrency\": "
            << std::thread::hardware_concurrency()
            << ",\n  \"budget_sec\": " << budget_sec
            << ",\n  \"timeslots\": " << env_config.num_timeslots
            << ",\n  \"pois\": " << env_config.num_pois
            << ",\n  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::cout << "    {\"sessions\": " << r.combo.sessions
              << ", \"clients\": " << r.combo.clients
              << ", \"max_batch\": " << r.combo.max_batch
              << ", \"transport\": \"" << r.transport << "\""
              << ", \"requests\": " << r.requests
              << ", \"seconds\": " << r.seconds
              << ", \"req_per_sec\": " << r.req_per_sec
              << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms
              << ", \"rows_per_batch\": " << r.rows_per_batch << "}"
              << (i + 1 < results.size() ? "," : "") << "\n";
  }
  std::cout << "  ],\n  \"capacity_req_per_sec\": " << capacity
            << ",\n  \"load_sweep\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepResult& r = sweep[i];
    std::cout << "    {\"offered_per_sec\": " << r.offered_per_sec
              << ", \"achieved_per_sec\": " << r.achieved_per_sec
              << ", \"submitted\": " << r.submitted << ", \"ok\": " << r.ok
              << ", \"expired\": " << r.expired
              << ", \"rejected\": " << r.rejected
              << ", \"goodput_per_sec\": " << r.goodput_per_sec
              << ", \"shed_rate\": " << r.shed_rate
              << ", \"p99_ms\": " << r.p99_ms << "}"
              << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  std::cout << "  ]\n}\n";
  return 0;
}
