// Serving-path benchmark: sustained request throughput and batching
// latency of core/DispatchServer. For each (sessions, clients, max_batch)
// configuration, client threads step their episode sessions through the
// batched inference path for a fixed wall-clock budget; the server's own
// latency window supplies p50/p99. Each configuration is measured twice:
// `direct` (in-process DispatchServer calls) and `tcp` (the same requests
// framed through core/ServeFrontend + ServeClient over loopback), so the
// delta is the full network-frontend overhead — framing, CRC, syscalls,
// and the per-connection handler hop. Results are recorded in
// BENCH_serving.json at the repo root.
//
// The policy is a freshly initialized (untrained) network — serving cost
// depends on architecture, not on the learned values — snapshotted through
// the same PolicySnapshot::FromTrainer path agsc_serve uses.
//
//   --smoke                  one tiny configuration, ~fractions of a second
//                            (the ctest entry; guards the harness itself)
//   AGSC_BENCH_SCALE=paper   longer measurement window per configuration
//   AGSC_BENCH_TIMESLOTS, AGSC_BENCH_POIS   override the env scale

#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/dispatch_server.h"
#include "core/policy_snapshot.h"
#include "core/serve_protocol.h"
#include "env/sc_env.h"
#include "util/table.h"

namespace agsc {
namespace {

struct Combo {
  int sessions = 0;
  int clients = 0;
  int max_batch = 0;
};

struct Result {
  Combo combo;
  const char* transport = "direct";
  double seconds = 0.0;
  uint64_t requests = 0;
  double req_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double rows_per_batch = 0.0;
};

Result Measure(const env::ScEnv& env, const core::HiMadrlTrainer& trainer,
               const Combo& combo, double budget_sec, bool over_tcp) {
  core::DispatchConfig config;
  config.num_sessions = combo.sessions;
  config.max_batch = combo.max_batch;
  config.deadline_ms = 0;  // Throughput run: serve everything, never expire.
  core::DispatchServer server(env, config);
  server.PublishSnapshot(core::PolicySnapshot::FromTrainer(trainer, "<live>"));
  server.Start();

  std::unique_ptr<core::ServeFrontend> frontend;
  if (over_tcp) {
    core::ServeFrontend::Options fopts;
    fopts.listen_address = "127.0.0.1:0";
    frontend = std::make_unique<core::ServeFrontend>(server, fopts);
    frontend->Start();
  }

  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(budget_sec));
  // TCP mode records *client-observed* round-trip latencies (framing + CRC
  // + syscalls + dispatch), one vector per client, merged after the join.
  std::vector<std::vector<double>> rtt_ms(
      static_cast<size_t>(combo.clients));
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(combo.clients));
  for (int c = 0; c < combo.clients; ++c) {
    clients.emplace_back([&, c] {
      int session = c % server.num_sessions();
      core::ServeClient client;
      if (over_tcp &&
          !client.Connect("127.0.0.1", frontend->bound_port(),
                          /*timeout_ms=*/5000)) {
        std::cerr << "  tcp client " << c << ": connect failed\n";
        return;
      }
      while (std::chrono::steady_clock::now() < deadline) {
        core::DispatchResult result;
        if (over_tcp) {
          const auto t0 = std::chrono::steady_clock::now();
          if (!client.StepSession(session, /*timeout_ms=*/30000, result)) {
            break;
          }
          rtt_ms[static_cast<size_t>(c)].push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
        } else {
          result = server.StepSession(session);
        }
        if (result.shutdown) break;
        session = (session + combo.clients) % server.num_sessions();
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (frontend != nullptr) frontend->Stop();
  server.Stop();

  const core::DispatchStats stats = server.Stats();
  Result r;
  r.combo = combo;
  r.transport = over_tcp ? "tcp" : "direct";
  r.seconds = seconds;
  r.requests = stats.requests_ok;
  r.req_per_sec = seconds > 0 ? stats.requests_ok / seconds : 0.0;
  r.p50_ms = stats.latency_p50_ms;
  r.p99_ms = stats.latency_p99_ms;
  if (over_tcp) {
    std::vector<double> all;
    for (const std::vector<double>& v : rtt_ms) {
      all.insert(all.end(), v.begin(), v.end());
    }
    if (!all.empty()) {
      std::sort(all.begin(), all.end());
      r.p50_ms = all[all.size() / 2];
      r.p99_ms = all[std::min(all.size() - 1, all.size() * 99 / 100)];
    }
  }
  r.rows_per_batch =
      stats.batches > 0 ? static_cast<double>(stats.rows) / stats.batches : 0.0;
  return r;
}

}  // namespace
}  // namespace agsc

int main(int argc, char** argv) {
  using namespace agsc;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  const bench::Settings settings = bench::Settings::FromEnv();
  bench::PrintBanner("Policy dispatch serving throughput", settings);
  std::cout << "host hardware concurrency: "
            << std::thread::hardware_concurrency() << "\n";

  const map::Dataset& dataset =
      bench::GetDataset(map::CampusId::kPurdue, settings.num_pois);
  env::EnvConfig env_config = bench::BaseEnvConfig(settings);
  env::ScEnv env(env_config, dataset, /*seed=*/1);
  core::TrainConfig train = bench::BaseTrainConfig(settings, /*seed=*/1);
  core::HiMadrlTrainer trainer(env, train);

  const double budget_sec = smoke ? 0.2 : (settings.paper ? 5.0 : 2.0);
  std::vector<Combo> combos;
  if (smoke) {
    combos = {{2, 2, 8}};
  } else {
    combos = {{1, 1, 1},    {4, 4, 16},  {8, 8, 64},
              {8, 16, 64},  {16, 16, 128}};
  }

  std::vector<Result> results;
  for (const Combo& combo : combos) {
    for (const bool over_tcp : {false, true}) {
      std::cerr << "  measuring sessions=" << combo.sessions
                << " clients=" << combo.clients
                << " max_batch=" << combo.max_batch
                << (over_tcp ? " over tcp" : " direct") << "...\n";
      results.push_back(Measure(env, trainer, combo, budget_sec, over_tcp));
    }
  }

  util::Table table({"sessions", "clients", "max_batch", "transport", "req/s",
                     "p50_ms", "p99_ms", "rows/batch"});
  for (const Result& r : results) {
    table.AddRow({std::to_string(r.combo.sessions),
                  std::to_string(r.combo.clients),
                  std::to_string(r.combo.max_batch), r.transport,
                  util::FormatDouble(r.req_per_sec, 1),
                  util::FormatDouble(r.p50_ms, 4),
                  util::FormatDouble(r.p99_ms, 4),
                  util::FormatDouble(r.rows_per_batch, 2)});
  }
  table.Print();

  // Machine-readable block (copied into BENCH_serving.json).
  std::cout << "{\n  \"hardware_concurrency\": "
            << std::thread::hardware_concurrency()
            << ",\n  \"budget_sec\": " << budget_sec
            << ",\n  \"timeslots\": " << env_config.num_timeslots
            << ",\n  \"pois\": " << env_config.num_pois
            << ",\n  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::cout << "    {\"sessions\": " << r.combo.sessions
              << ", \"clients\": " << r.combo.clients
              << ", \"max_batch\": " << r.combo.max_batch
              << ", \"transport\": \"" << r.transport << "\""
              << ", \"requests\": " << r.requests
              << ", \"seconds\": " << r.seconds
              << ", \"req_per_sec\": " << r.req_per_sec
              << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms
              << ", \"rows_per_batch\": " << r.rows_per_batch << "}"
              << (i + 1 < results.size() ? "," : "") << "\n";
  }
  std::cout << "  ]\n}\n";
  return 0;
}
