// Reproduces Table III: hyperparameter tuning of the intrinsic-reward
// weight omega_in (i-EOI) jointly with the SP (shared network parameters)
// and CC (centralized critic) architecture choices of h-CoPO, on both
// campuses, reporting all five metrics.

#include <iostream>

#include "bench/bench_common.h"
#include "core/evaluator.h"

int main() {
  using namespace agsc;
  const bench::Settings settings = bench::Settings::FromEnv();
  bench::PrintBanner("Table III - hyperparameter tuning (omega_in x SP/CC)",
                     settings);

  const std::vector<float> omega_ins = settings.Sweep<float>(
      {0.001f, 0.003f, 0.01f}, {0.001f, 0.003f, 0.01f});
  struct Combo {
    const char* name;
    bool sp;
    bool cc;
  };
  const std::vector<Combo> combos = {{"w/o SP, w/o CC", false, false},
                                     {"w/ SP, w/o CC", true, false},
                                     {"w/o SP, w/ CC", false, true},
                                     {"w/ SP, w/ CC", true, true}};
  const char* metric_names[] = {"psi", "sigma", "xi", "kappa", "lambda"};

  util::CsvWriter csv(bench::OutDir() + "/table3_hparam.csv",
                      {"campus", "omega_in", "combo", "psi", "sigma", "xi",
                       "kappa", "lambda"});
  double best_lambda = -1.0;
  std::string best_cell;
  for (const map::CampusId campus :
       {map::CampusId::kPurdue, map::CampusId::kNcsu}) {
    std::cout << "\n--- " << map::CampusName(campus) << " ---\n";
    for (float omega_in : omega_ins) {
      std::vector<env::Metrics> row_metrics;
      for (const Combo& combo : combos) {
        env::EnvConfig env_config = bench::BaseEnvConfig(settings);
        core::TrainConfig train = bench::BaseTrainConfig(settings, 31);
        train.omega_in = omega_in;
        train.share_params = combo.sp;
        train.centralized_critic = combo.cc;
        bench::TrainedHiMadrl run = bench::TrainHiMadrlVariant(
            env_config, campus, settings, train);
        const env::Metrics m =
            core::Evaluate(*run.env, *run.trainer, settings.eval_episodes,
                           4242)
                .mean;
        row_metrics.push_back(m);
        std::cerr << "  [" << map::CampusName(campus) << "] omega_in="
                  << omega_in << " " << combo.name << ": lambda="
                  << util::FormatDouble(m.efficiency, 3) << "\n";
        csv.WriteRow({map::CampusName(campus),
                      util::FormatDouble(omega_in, 4), combo.name,
                      util::FormatDouble(m.data_collection_ratio, 4),
                      util::FormatDouble(m.data_loss_ratio, 4),
                      util::FormatDouble(m.energy_consumption_ratio, 4),
                      util::FormatDouble(m.geographical_fairness, 4),
                      util::FormatDouble(m.efficiency, 4)});
        csv.Flush();
        if (m.efficiency > best_lambda) {
          best_lambda = m.efficiency;
          best_cell = map::CampusName(campus) + " omega_in=" +
                      util::FormatDouble(omega_in, 4) + ", " + combo.name;
        }
      }
      std::vector<std::string> header = {
          "omega_in=" + util::FormatDouble(omega_in, 4)};
      for (const Combo& combo : combos) header.push_back(combo.name);
      util::Table table(header);
      for (int metric = 0; metric < 5; ++metric) {
        std::vector<double> row;
        for (const env::Metrics& m : row_metrics) {
          row.push_back(m.ToVector()[metric]);
        }
        table.AddRow(metric_names[metric], row);
      }
      table.Print();
      std::cout << "\n";
    }
  }
  std::cout << "Best cell: " << best_cell << " (lambda="
            << util::FormatDouble(best_lambda, 3)
            << "). Paper: omega_in=0.003, w/o SP, w/o CC.\n";
  return 0;
}
