// Microbenchmarks of the neural substrate: matmul throughput, MLP
// forward/backward, Adam steps, GRU steps, and the i-EOI classifier
// update. These bound the wall-clock cost of one training iteration.

#include <benchmark/benchmark.h>

#include "core/eoi.h"
#include "nn/gru.h"
#include "nn/layers.h"
#include "nn/optimizer.h"

namespace {

using namespace agsc;

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  util::Rng rng(1);
  nn::Tensor a = nn::Tensor::Randn(n, n, rng);
  nn::Tensor b = nn::Tensor::Randn(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128)->Arg(256);

void BM_MlpForward(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  util::Rng rng(2);
  nn::Mlp mlp({312, 128, 64, 2}, rng);
  nn::Tensor x = nn::Tensor::Randn(batch, 312, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.Forward(x).value()(0, 0));
  }
}
BENCHMARK(BM_MlpForward)->Arg(1)->Arg(64)->Arg(256);

void BM_MlpForwardBackward(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  util::Rng rng(3);
  nn::Mlp mlp({312, 128, 64, 2}, rng);
  nn::Tensor x = nn::Tensor::Randn(batch, 312, rng);
  std::vector<nn::Variable> params = mlp.Parameters();
  for (auto _ : state) {
    for (nn::Variable& p : params) p.ZeroGrad();
    nn::Variable loss = nn::Mean(nn::Square(mlp.Forward(x)));
    loss.Backward();
    benchmark::DoNotOptimize(params[0].grad()[0]);
  }
}
BENCHMARK(BM_MlpForwardBackward)->Arg(64)->Arg(256);

void BM_AdamStep(benchmark::State& state) {
  util::Rng rng(4);
  nn::Mlp mlp({312, 128, 64, 2}, rng);
  nn::Adam adam(mlp.Parameters(), 3e-4f);
  nn::Tensor x = nn::Tensor::Randn(64, 312, rng);
  nn::Mean(nn::Square(mlp.Forward(x))).Backward();
  for (auto _ : state) {
    adam.Step();
  }
}
BENCHMARK(BM_AdamStep);

void BM_GruStep(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  util::Rng rng(5);
  nn::GruCell gru(128, 64, rng);
  nn::Tensor x = nn::Tensor::Randn(batch, 128, rng);
  nn::Tensor h = gru.InitialState(batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gru.Step(nn::Variable::Constant(x), nn::Variable::Constant(h))
            .value()(0, 0));
  }
}
BENCHMARK(BM_GruStep)->Arg(1)->Arg(64);

void BM_EoiClassifierUpdate(benchmark::State& state) {
  util::Rng rng(6);
  core::EoiConfig config;
  config.hidden = {128, 64};
  config.epochs = 1;
  core::EoiClassifier eoi(312, 4, config, rng);
  std::vector<std::vector<std::vector<float>>> per_agent(4);
  for (auto& rows : per_agent) {
    for (int i = 0; i < 100; ++i) {
      std::vector<float> row(312);
      for (float& v : row) v = static_cast<float>(rng.Uniform());
      rows.push_back(std::move(row));
    }
  }
  std::vector<const std::vector<std::vector<float>>*> ptrs;
  for (const auto& rows : per_agent) ptrs.push_back(&rows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eoi.Update(ptrs, rng));
  }
}
BENCHMARK(BM_EoiClassifierUpdate)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
