// Microbenchmarks of the neural substrate: matmul throughput across the
// kernel configurations, MLP forward/backward, Adam steps, GRU steps, the
// i-EOI classifier update, and an end-to-end PPO optimize phase. These
// bound the wall-clock cost of one training iteration and back the numbers
// checked into BENCH_nn.json.
//
// GEMM benchmarks take a second argument selecting the kernel mode:
//   0 = naive reference, 1 = blocked, 2 = blocked + 4 worker threads.
// All modes produce bit-identical outputs (asserted per run below and by
// nn_kernel_test); only throughput differs.

#include <benchmark/benchmark.h>

#include "core/eoi.h"
#include "core/hi_madrl.h"
#include "env/sc_env.h"
#include "map/campus.h"
#include "nn/gru.h"
#include "nn/layers.h"
#include "nn/optimizer.h"

namespace {

using namespace agsc;

/// Installs the kernel mode for one benchmark run and restores the default
/// configuration when the run ends.
class KernelModeGuard {
 public:
  explicit KernelModeGuard(int mode) : saved_(nn::GetKernelConfig()) {
    nn::KernelConfig config;
    config.gemm =
        mode == 0 ? nn::GemmKernel::kNaive : nn::GemmKernel::kBlocked;
    config.nn_threads = mode == 2 ? 4 : 0;
    if (mode == 2) config.parallel_min_flops = 0;
    nn::SetKernelConfig(config);
  }
  ~KernelModeGuard() { nn::SetKernelConfig(saved_); }

 private:
  nn::KernelConfig saved_;
};

const char* KernelModeName(int mode) {
  switch (mode) {
    case 0:
      return "naive";
    case 1:
      return "blocked";
    default:
      return "blocked_t4";
  }
}

/// Cross-checks one blocked product against the naive reference; bails the
/// benchmark loudly if the determinism contract is ever violated.
bool SelfCheck(benchmark::State& state, const nn::Tensor& got,
               const nn::Tensor& want) {
  if (!got.SameAs(want)) {
    state.SkipWithError("blocked kernel diverged from naive reference");
    return false;
  }
  return true;
}

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int mode = static_cast<int>(state.range(1));
  KernelModeGuard guard(mode);
  state.SetLabel(KernelModeName(mode));
  util::Rng rng(1);
  nn::Tensor a = nn::Tensor::Randn(n, n, rng);
  nn::Tensor b = nn::Tensor::Randn(n, n, rng);
  if (!SelfCheck(state, nn::MatMul(a, b), nn::internal::NaiveMatMul(a, b))) {
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatMul)
    ->ArgsProduct({{64, 128, 256}, {0, 1, 2}});

void BM_MatMulTransposedB(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int mode = static_cast<int>(state.range(1));
  KernelModeGuard guard(mode);
  state.SetLabel(KernelModeName(mode));
  util::Rng rng(2);
  nn::Tensor a = nn::Tensor::Randn(n, n, rng);
  nn::Tensor b = nn::Tensor::Randn(n, n, rng);
  if (!SelfCheck(state, nn::MatMulTransposedB(a, b),
                 nn::internal::NaiveMatMulTransposedB(a, b))) {
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMulTransposedB(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatMulTransposedB)->ArgsProduct({{128, 256}, {0, 1, 2}});

void BM_MatMulTransposedA(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int mode = static_cast<int>(state.range(1));
  KernelModeGuard guard(mode);
  state.SetLabel(KernelModeName(mode));
  util::Rng rng(3);
  nn::Tensor a = nn::Tensor::Randn(n, n, rng);
  nn::Tensor b = nn::Tensor::Randn(n, n, rng);
  if (!SelfCheck(state, nn::MatMulTransposedA(a, b),
                 nn::internal::NaiveMatMulTransposedA(a, b))) {
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMulTransposedA(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatMulTransposedA)->ArgsProduct({{128, 256}, {0, 1, 2}});

void BM_MatMulTraining(benchmark::State& state) {
  // The dominant training GEMM shape: minibatch x obs -> hidden.
  const int mode = static_cast<int>(state.range(0));
  KernelModeGuard guard(mode);
  state.SetLabel(KernelModeName(mode));
  util::Rng rng(4);
  nn::Tensor a = nn::Tensor::Randn(64, 312, rng);
  nn::Tensor b = nn::Tensor::Randn(312, 128, rng);
  if (!SelfCheck(state, nn::MatMul(a, b), nn::internal::NaiveMatMul(a, b))) {
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2LL * 64 * 312 * 128);
}
BENCHMARK(BM_MatMulTraining)->Arg(0)->Arg(1)->Arg(2);

void BM_MlpForward(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  util::Rng rng(2);
  nn::Mlp mlp({312, 128, 64, 2}, rng);
  nn::Tensor x = nn::Tensor::Randn(batch, 312, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.Forward(x).value()(0, 0));
  }
}
BENCHMARK(BM_MlpForward)->Arg(1)->Arg(64)->Arg(256);

void BM_MlpForwardBackward(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  util::Rng rng(3);
  nn::Mlp mlp({312, 128, 64, 2}, rng);
  nn::Tensor x = nn::Tensor::Randn(batch, 312, rng);
  std::vector<nn::Variable> params = mlp.Parameters();
  for (auto _ : state) {
    for (nn::Variable& p : params) p.ZeroGrad();
    nn::Variable loss = nn::Mean(nn::Square(mlp.Forward(x)));
    loss.Backward();
    benchmark::DoNotOptimize(params[0].grad()[0]);
  }
}
BENCHMARK(BM_MlpForwardBackward)->Arg(64)->Arg(256);

void BM_AdamStep(benchmark::State& state) {
  util::Rng rng(4);
  nn::Mlp mlp({312, 128, 64, 2}, rng);
  nn::Adam adam(mlp.Parameters(), 3e-4f);
  nn::Tensor x = nn::Tensor::Randn(64, 312, rng);
  nn::Mean(nn::Square(mlp.Forward(x))).Backward();
  for (auto _ : state) {
    adam.Step();
  }
}
BENCHMARK(BM_AdamStep);

void BM_GruStep(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  util::Rng rng(5);
  nn::GruCell gru(128, 64, rng);
  nn::Tensor x = nn::Tensor::Randn(batch, 128, rng);
  nn::Tensor h = gru.InitialState(batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gru.Step(nn::Variable::Constant(x), nn::Variable::Constant(h))
            .value()(0, 0));
  }
}
BENCHMARK(BM_GruStep)->Arg(1)->Arg(64);

void BM_EoiClassifierUpdate(benchmark::State& state) {
  util::Rng rng(6);
  core::EoiConfig config;
  config.hidden = {128, 64};
  config.epochs = 1;
  core::EoiClassifier eoi(312, 4, config, rng);
  std::vector<std::vector<std::vector<float>>> per_agent(4);
  for (auto& rows : per_agent) {
    for (int i = 0; i < 100; ++i) {
      std::vector<float> row(312);
      for (float& v : row) v = static_cast<float>(rng.Uniform());
      rows.push_back(std::move(row));
    }
  }
  std::vector<const std::vector<std::vector<float>>*> ptrs;
  for (const auto& rows : per_agent) ptrs.push_back(&rows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eoi.Update(ptrs, rng));
  }
}
BENCHMARK(BM_EoiClassifierUpdate)->Unit(benchmark::kMillisecond);

void BM_PpoUpdate(benchmark::State& state) {
  // End-to-end optimize phase (i-EOI update + M1 policy epochs + M2 LCF
  // meta-updates) on a fixed pre-collected rollout buffer. This is the NN
  // hot path the blocked kernels and the buffer pool exist for.
  const int mode = static_cast<int>(state.range(0));
  static const map::Dataset* dataset =
      new map::Dataset(map::BuildDataset(map::CampusId::kPurdue, 10));
  env::EnvConfig env_config;
  env_config.num_timeslots = 30;
  env_config.num_pois = 10;
  env_config.num_uavs = 1;
  env_config.num_ugvs = 1;
  env::ScEnv env(env_config, *dataset, 11);
  core::TrainConfig train;
  train.iterations = 1;
  train.episodes_per_iteration = 4;
  train.policy_epochs = 2;
  train.lcf_epochs = 1;
  train.minibatch = 64;
  train.net.hidden = {64, 64};
  train.eoi.hidden = {32};
  train.seed = 11;
  train.verbose = false;
  train.nn_naive_kernels = (mode == 0);
  train.nn_threads = mode == 2 ? 4 : 0;
  // Guard first (captures the default config to restore afterwards); the
  // trainer ctor then installs the config implied by `train`.
  KernelModeGuard guard(mode);
  core::HiMadrlTrainer trainer(env, train);
  if (mode == 2) {
    // The ctor resets parallel_min_flops; force the bench-sized GEMMs onto
    // the worker pool anyway so the threaded path is what gets timed.
    nn::KernelConfig kc = nn::GetKernelConfig();
    kc.parallel_min_flops = 0;
    nn::SetKernelConfig(kc);
  }
  state.SetLabel(KernelModeName(mode));
  trainer.CollectRollouts();
  for (auto _ : state) {
    trainer.OptimizeOnCurrentBuffer();
  }
}
BENCHMARK(BM_PpoUpdate)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
