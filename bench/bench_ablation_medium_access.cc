// Design-choice ablation (DESIGN.md / paper Section III-B closing remark):
// the system model defaults to AG-NOMA, but the solution also applies to
// TDMA and OFDMA by redefining the data-collection model. This harness
// compares the three schemes under a fixed learned policy and under the
// Shortest-Path planner, showing what NOMA's full-band-with-interference
// trade buys on each metric.

#include <iostream>

#include "algorithms/shortest_path.h"
#include "bench/bench_common.h"
#include "core/evaluator.h"

int main() {
  using namespace agsc;
  const bench::Settings settings = bench::Settings::FromEnv();
  bench::PrintBanner("Ablation - medium access (NOMA vs TDMA vs OFDMA)",
                     settings);

  struct Scheme {
    const char* name;
    env::MediumAccess ma;
  };
  const std::vector<Scheme> schemes = {
      {"AG-NOMA (paper)", env::MediumAccess::kNoma},
      {"TDMA", env::MediumAccess::kTdma},
      {"OFDMA", env::MediumAccess::kOfdma},
  };

  util::CsvWriter csv(bench::OutDir() + "/ablation_medium_access.csv",
                      {"policy", "scheme", "psi", "sigma", "xi", "kappa",
                       "lambda"});
  for (const bool learned : {true, false}) {
    util::Table table({learned ? "h/i-MADRL" : "Shortest Path", "psi",
                       "sigma", "xi", "kappa", "lambda"});
    for (const Scheme& scheme : schemes) {
      env::EnvConfig config = bench::BaseEnvConfig(settings);
      config.medium_access = scheme.ma;
      env::Metrics m;
      if (learned) {
        core::TrainConfig train = bench::BaseTrainConfig(settings, 101);
        bench::TrainedHiMadrl run = bench::TrainHiMadrlVariant(
            config, map::CampusId::kPurdue, settings, train);
        m = core::Evaluate(*run.env, *run.trainer, settings.eval_episodes,
                           11)
                .mean;
      } else {
        const map::Dataset& dataset =
            bench::GetDataset(map::CampusId::kPurdue, config.num_pois);
        env::ScEnv env(config, dataset, 11);
        algorithms::ShortestPathPolicy sp;
        m = core::Evaluate(env, sp, settings.eval_episodes, 11).mean;
      }
      table.AddRow(scheme.name, m.ToVector());
      std::cerr << "  " << (learned ? "h/i-MADRL" : "Shortest Path") << " / "
                << scheme.name << ": lambda="
                << util::FormatDouble(m.efficiency, 3) << "\n";
      csv.WriteRow({learned ? "h/i-MADRL" : "ShortestPath", scheme.name,
                    util::FormatDouble(m.data_collection_ratio, 4),
                    util::FormatDouble(m.data_loss_ratio, 4),
                    util::FormatDouble(m.energy_consumption_ratio, 4),
                    util::FormatDouble(m.geographical_fairness, 4),
                    util::FormatDouble(m.efficiency, 4)});
      csv.Flush();
    }
    table.Print();
    std::cout << "\n";
  }
  return 0;
}
