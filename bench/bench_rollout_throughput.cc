// Sampling-throughput harness for the vectorized rollout subsystem:
// measures env-steps/s of HiMadrlTrainer::CollectRollouts for worker
// counts {1, 2, 4, 8} (plus the legacy sequential sampler as the
// baseline) and reports the speedup over one worker. Results are
// recorded in BENCH_rollout.json at the repo root.
//
// Worker counts above the host's core count cannot speed anything up —
// the harness still runs them (the determinism contract must hold at any
// W) and prints the host concurrency so single-core CI numbers are not
// mistaken for a scaling regression.
//
//   AGSC_BENCH_SCALE=paper   larger episode budget per measurement
//   AGSC_BENCH_TIMESLOTS, AGSC_BENCH_POIS   override the env scale

#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/hi_madrl.h"
#include "env/sc_env.h"
#include "util/table.h"

namespace agsc {
namespace {

struct Result {
  int num_workers = 0;  ///< 0 = legacy sequential sampler.
  long env_steps = 0;
  double seconds = 0.0;
  double steps_per_sec = 0.0;
};

Result MeasureWorkers(const bench::Settings& settings, int num_workers,
                      int episodes) {
  const map::Dataset& dataset =
      bench::GetDataset(map::CampusId::kPurdue, settings.num_pois);
  env::EnvConfig env_config = bench::BaseEnvConfig(settings);
  env::ScEnv env(env_config, dataset, /*seed=*/1);

  core::TrainConfig train = bench::BaseTrainConfig(settings, /*seed=*/1);
  train.episodes_per_iteration = episodes;
  train.num_workers = num_workers;
  core::HiMadrlTrainer trainer(env, train);

  // Warm-up round (first collection touches cold caches), then the
  // measured collection.
  trainer.CollectRollouts();
  const auto start = std::chrono::steady_clock::now();
  trainer.CollectRollouts();
  const auto stop = std::chrono::steady_clock::now();

  Result r;
  r.num_workers = num_workers;
  r.env_steps = static_cast<long>(episodes) * env_config.num_timeslots *
                env.num_agents();
  r.seconds = std::chrono::duration<double>(stop - start).count();
  r.steps_per_sec = r.seconds > 0 ? r.env_steps / r.seconds : 0.0;
  return r;
}

}  // namespace
}  // namespace agsc

int main() {
  using namespace agsc;
  const bench::Settings settings = bench::Settings::FromEnv();
  bench::PrintBanner("Rollout sampling throughput (env-steps/s)", settings);
  const unsigned cores = std::thread::hardware_concurrency();
  std::cout << "host hardware concurrency: " << cores << "\n";

  const int episodes = settings.paper ? 64 : 16;
  const std::vector<int> worker_counts = {0, 1, 2, 4, 8};
  std::vector<Result> results;
  for (int workers : worker_counts) {
    std::cerr << "  measuring num_workers=" << workers
              << (workers == 0 ? " (legacy sequential)" : "") << "...\n";
    results.push_back(MeasureWorkers(settings, workers, episodes));
  }

  double base_sps = 0.0;
  for (const Result& r : results) {
    if (r.num_workers == 1) base_sps = r.steps_per_sec;
  }
  util::Table table({"num_workers", "env_steps", "seconds", "steps/s",
                     "speedup_vs_w1"});
  for (const Result& r : results) {
    table.AddRow({r.num_workers == 0 ? "legacy" : std::to_string(r.num_workers),
                  std::to_string(r.env_steps),
                  util::FormatDouble(r.seconds, 4),
                  util::FormatDouble(r.steps_per_sec, 1),
                  util::FormatDouble(
                      base_sps > 0 ? r.steps_per_sec / base_sps : 0.0, 3)});
  }
  table.Print();

  // Machine-readable block (copied into BENCH_rollout.json).
  std::cout << "{\n  \"hardware_concurrency\": " << cores
            << ",\n  \"episodes_per_measurement\": " << episodes
            << ",\n  \"results\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::cout << "    {\"num_workers\": " << r.num_workers
              << ", \"env_steps\": " << r.env_steps
              << ", \"seconds\": " << r.seconds
              << ", \"steps_per_sec\": " << r.steps_per_sec << "}"
              << (i + 1 < results.size() ? "," : "") << "\n";
  }
  std::cout << "  ]\n}\n";
  return 0;
}
