// Reproduces Fig. 9 (Purdue) and Fig. 10 (NCSU): impact of the SINR/QoS
// threshold. Paper sweep: {-7, -2.2, 0, 3, 7} dB.

#include "bench/bench_common.h"

int main() {
  using namespace agsc;
  const bench::Settings settings = bench::Settings::FromEnv();
  const std::vector<double> sweep =
      settings.Sweep<double>({-7.0, 0.0, 7.0}, {-7.0, -2.2, 0.0, 3.0, 7.0});
  bench::RunParameterSweep(
      "Fig. 9 / Fig. 10 - impact of SINR threshold", "sinr_db", sweep,
      [](env::EnvConfig& config, double value) {
        config.sinr_threshold_db = value;
      },
      settings, "fig9_10_sinr_threshold");
  return 0;
}
